package nopfs

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/cachepolicy"
	"repro/internal/chaos"
	"repro/internal/hwspec"
	"repro/internal/plancache"
	"repro/internal/resilience"
	"repro/internal/storage"
	"repro/internal/transport"
)

// Job is one worker's handle on a distributed training run: the paper's
// Python `Job` class. It owns the worker's staging buffer, storage-class
// prefetchers, and fabric endpoint, and delivers samples in exact schedule
// order through Samples, GetBatch, or Get.
type Job struct {
	rank int
	opts Options
	ds   Dataset
	plan *access.Plan
	// digest is the plan's full-parameter hash, computed once: it is
	// exchanged in Start's allgather and served to peers on every
	// KindValue request.
	digest uint64

	assign   *cachepolicy.Assignment
	stream   []access.SampleID
	perEpoch int

	backends []StorageBackend
	staging  *storage.Staging
	net      Endpoint
	pfs      *pfs

	// chaosSched is the compiled fault schedule (nil for fault-free runs);
	// chaosTiers throttle this rank's degraded storage classes.
	chaosSched *chaos.Schedule
	chaosTiers map[int]*tierThrottle

	// Crash recovery (all zero/nil without a crash profile): epochEnds
	// carries the redistributed stream's unequal cumulative epoch
	// boundaries (nil = the uniform legacy rule); crashEpoch is this
	// rank's own scheduled crash epoch (-1 = survivor); redistributed is
	// the plan-round count grafted from crashed peers.
	epochEnds     []int
	crashEpoch    int
	redistributed int64
	crashOnce     sync.Once

	// res is the fetch path's resilience policy (empty = the legacy
	// single-attempt path); breakers holds one per-peer circuit breaker
	// when the policy sets a threshold (nil entries for self); retrySeq
	// feeds each retry loop's deterministic backoff key.
	res      resilience.Policy
	breakers []*resilience.Breaker
	retrySeq atomic.Uint64
	retries  atomic.Int64

	// ctx is the job's lifetime context: derived in Start from the caller's
	// context, canceled by Close. Prefetchers block under it, so cancellation
	// of either kind unwinds every blocking layer.
	ctx    context.Context
	cancel context.CancelFunc

	progress atomic.Int64 // staging prefetch position (heuristic input)
	pos      atomic.Int64 // next stream position to claim

	fetchPFS    atomic.Int64
	fetchRemote atomic.Int64
	fetchLocal  atomic.Int64
	falsePos    atomic.Int64
	delivered   atomic.Int64
	stallNanos  atomic.Int64

	// met is the rank's resolved metric series (nil when observability is
	// off; every method is nil-safe).
	met *jobMetrics

	// fatalMu guards fatal: fail() can run on any prefetcher goroutine
	// concurrently with the consumer reading the error in Get.
	fatalMu sync.Mutex
	fatal   error

	// sources records the fetch source per staged position so Get can
	// report it alongside the sample.
	sourceMu sync.Mutex
	sources  map[int]Source

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// newJob wires one worker. The caller provides the fabric endpoint and the
// shared PFS; placement is computed clairvoyantly from the options' seed.
// ctx bounds backend construction only — the job's lifetime context is
// derived later, in Start.
func newJob(ctx context.Context, ds Dataset, rank, workers int, opts Options, net Endpoint, shared *pfs) (*Job, error) {
	// Canonicalise the access spec before it enters the plan: every rank
	// (and the simulator) must derive the identical Plan value — and so the
	// identical digest — from equivalent spellings of the same pattern.
	spec, err := access.CanonicalSpec(opts.Access)
	if err != nil {
		return nil, fmt.Errorf("nopfs: %w", err)
	}
	plan := &access.Plan{
		Seed: opts.Seed, F: ds.Len(), N: workers, E: opts.Epochs,
		BatchPerWorker: opts.BatchPerWorker, DropLast: opts.DropLast,
		Access: spec,
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	node := nodeFromClasses(opts.Classes)
	// Plan artifacts and the placement come from the shared plan cache: the
	// N ranks of one cluster (and every cluster-grid cell sharing a seed)
	// reconstruct the clairvoyant schedule once, not once per rank. The
	// shared stream and assignment are immutable; the job only reads them.
	art := plancache.Shared().Artifacts(*plan)
	assign := art.Assignment(plancache.FamilyNoPFS, ds, node, func() *cachepolicy.Assignment {
		return cachepolicy.BuildNoPFSFromStreams(plan, art.Streams, ds, node)
	})
	// Crash re-planning happens before the struct is wired: under a crash
	// profile every rank reshapes its delivery stream with the shared
	// redistribution rule (chaos.RedistributeStream — the same pure
	// function the simulator evaluates), so survivors absorb the crashed
	// ranks' orphaned plan rounds clairvoyantly and a crashed rank keeps
	// only its pre-crash prefix. Fault-free runs take art.Streams[rank]
	// untouched.
	sched := opts.Chaos.Compile(opts.Seed)
	stream := art.Streams[rank]
	var ends []int
	crashEpoch := sched.CrashEpoch(rank, workers)
	if sched.HasCrashes(workers) {
		stream, ends = sched.RedistributeStream(rank, workers, plan.E, stream,
			plan.SamplesPerEpoch,
			func(w int) []access.SampleID { return art.Streams[w] })
	} else if len(art.EpochEnds) > 0 {
		// Elastic plan: the per-epoch partition varies with the membership
		// schedule, so epoch/iteration accounting follows the precomputed
		// cumulative boundaries exactly as a crash-redistributed stream's
		// do. (Options.Validate rejects elastic × crash, so the branches
		// are exclusive.)
		ends = art.EpochEnds[rank]
	}
	j := &Job{
		rank: rank, opts: opts, ds: ds, plan: plan, digest: plan.Hash(),
		assign:        assign,
		stream:        stream,
		perEpoch:      plan.SamplesPerEpoch(rank),
		epochEnds:     ends,
		crashEpoch:    crashEpoch,
		redistributed: int64(chaos.RedistributedRounds(art.Streams[rank], stream, ends)),
		staging:       storage.NewStaging(opts.StagingBytes),
		net:           net,
		pfs:           shared,
		res:           opts.Resilience,
		//lint:ignore ctxfirst placeholder lifetime before Start(ctx) installs the caller's context; never waited on
		ctx:    context.Background(),
		closed: make(chan struct{}),
		met:    newJobMetrics(opts.Metrics, rank, opts.Classes, opts.TraceFetches),
	}
	j.met.redistributedRounds(int(j.redistributed))
	if j.res.BreakerThreshold > 0 {
		// One circuit breaker per peer: consecutive fabric failures open
		// it (the peer is marked down and fetches demote to the PFS);
		// after the cooldown a half-open probe re-admits a recovered peer.
		j.breakers = make([]*resilience.Breaker, workers)
		for p := 0; p < workers; p++ {
			if p == rank {
				continue
			}
			peer := p
			j.breakers[p] = resilience.NewBreaker(j.res, func(from, to resilience.BreakerState) {
				j.met.circuitTransition(peer, from.String(), to.String())
				switch {
				case to == resilience.Open && from == resilience.Closed:
					j.met.peersDown(1)
				case to == resilience.Closed:
					j.met.peersDown(-1)
				}
			})
		}
	}
	for _, c := range opts.Classes {
		b, err := newClassBackend(ctx, rank, c)
		if err != nil {
			return nil, err
		}
		j.backends = append(j.backends, b)
	}
	if sched != nil {
		j.chaosSched = sched
		for _, class := range sched.DegradedClasses() {
			if class < len(opts.Classes) {
				if j.chaosTiers == nil {
					j.chaosTiers = map[int]*tierThrottle{}
				}
				t := newTierThrottle(opts.Classes[class])
				observeLimiter(opts.Metrics, t.lim, "tier:"+opts.Classes[class].Name)
				j.chaosTiers[class] = t
			}
		}
	}
	net.SetHandler(j.handle)
	return j, nil
}

// nodeFromClasses builds the hwspec view of the configured classes (the
// cache policy only consumes capacities).
func nodeFromClasses(classes []Class) hwspec.Node {
	node := hwspec.Node{
		Staging:          hwspec.StorageClass{Name: "staging", CapacityMB: 1, Threads: 1, Read: hwspec.Flat(1), Write: hwspec.Flat(1)},
		InterconnectMBps: 1,
	}
	for _, c := range classes {
		node.Classes = append(node.Classes, hwspec.StorageClass{
			Name:       c.Name,
			CapacityMB: float64(c.CapacityBytes) / (1 << 20),
			Threads:    c.Threads,
			Read:       hwspec.Flat(1),
			Write:      hwspec.Flat(1),
		})
	}
	return node
}

// Start verifies plan agreement with all peers (allgather of plan digests)
// and launches the prefetchers. It must be called once before consuming
// samples. The job's lifetime is bound to ctx: canceling it stops the
// prefetchers and unblocks any waiting consumer in bounded time.
func (j *Job) Start(ctx context.Context) error {
	if ctx == nil {
		//lint:ignore ctxfirst documented nil-ctx fallback: v1 callers passing nil get uncancellable Background semantics
		ctx = context.Background()
	}
	j.ctx, j.cancel = context.WithCancel(ctx)
	// Tie context cancellation to the legacy shutdown signal so every
	// pre-context wait (the class prefetchers' pacing loop, the staging
	// buffer's drain semantics) observes it too.
	context.AfterFunc(j.ctx, j.shutdown)

	digests, err := transport.AllgatherValue(j.ctx, j.net, j.digest)
	if err != nil {
		return fmt.Errorf("nopfs: plan allgather: %w", err)
	}
	for rank, d := range digests {
		if d != j.digest {
			return fmt.Errorf("nopfs: rank %d derived a different access plan (digest %#x != %#x): seeds or parameters diverge",
				rank, d, j.digest)
		}
	}
	// Storage-class prefetchers: fill each class with its assigned
	// samples in first-access order (Rule 1).
	for c := range j.backends {
		fill := j.assign.FillOrder[j.rank][c]
		var next atomic.Int64
		threads := j.opts.Classes[c].Threads
		for t := 0; t < threads; t++ {
			j.wg.Add(1)
			go j.classPrefetcher(c, fill, &next)
		}
	}
	// Staging prefetchers: walk the access stream R in order.
	for t := 0; t < j.opts.StagingThreads; t++ {
		j.wg.Add(1)
		go j.stagingPrefetcher()
	}
	if len(j.stream) == 0 {
		// A rank outside its elastic membership window for the whole run
		// delivers nothing: close the staging buffer now so Get reports a
		// clean end of stream instead of blocking on prefetchers that have
		// nothing to stage. The endpoint stays open — the rank keeps
		// serving its cached bytes to peers until cluster teardown.
		j.staging.Close()
	}
	return nil
}

// errJobClosed aborts in-flight prefetch work during shutdown.
var errJobClosed = errors.New("nopfs: job closed")

// isClosed reports whether shutdown has begun (Close or context cancel).
func (j *Job) isClosed() bool {
	select {
	case <-j.closed:
		return true
	default:
		return false
	}
}

// shutdown flips the job into teardown: wake every waiter, stop stream
// claimers. Idempotent; runs on Close and on context cancellation.
func (j *Job) shutdown() {
	j.closeOnce.Do(func() { close(j.closed) })
	j.staging.Close()
	j.pos.Store(int64(len(j.stream))) // stop claimers
}

// benign reports whether a prefetch error is part of an orderly teardown
// rather than a run failure.
func (j *Job) benign(err error) bool {
	return err == errJobClosed || err == storage.ErrClosed || j.ctx.Err() != nil
}

// fail records the first fatal error and unblocks the consumer.
func (j *Job) fail(err error) {
	j.fatalMu.Lock()
	first := j.fatal == nil
	if first {
		j.fatal = err
	}
	j.fatalMu.Unlock()
	if first {
		j.staging.Close()
	}
}

// fatalErr snapshots the first fatal error, if any.
func (j *Job) fatalErr() error {
	j.fatalMu.Lock()
	defer j.fatalMu.Unlock()
	return j.fatal
}

// handle serves peer requests: sample fetches from local caches and plan
// digest exchanges. ctx is the fabric endpoint's lifetime. Serving a peer
// from a degraded tier pays the same chaos throttle as a local read — the
// class's bandwidth is degraded, not just the owner's view of it.
func (j *Job) handle(ctx context.Context, from int, req transport.Request) transport.Response {
	switch req.Kind {
	case transport.KindValue:
		return transport.Response{OK: true, Value: j.digest}
	case transport.KindFetch:
		for ci, b := range j.backends {
			if data, ok, err := b.Get(ctx, req.Sample); err == nil && ok {
				if err := j.chaosTierWait(ctx, ci, j.epochOf(int(j.progress.Load())), int64(len(data))); err != nil {
					return transport.Response{OK: false}
				}
				return transport.Response{OK: true, Data: data}
			}
		}
		return transport.Response{OK: false}
	}
	return transport.Response{}
}

// chaosTierWait pays the degraded-tier throttle for one read of n bytes
// from class ci at the given epoch (no-op for undegraded classes or
// fault-free runs). Requester-side reads derive the epoch from the stream
// position; peer serves use the serving rank's own progress.
func (j *Job) chaosTierWait(ctx context.Context, ci, epoch int, n int64) error {
	t := j.chaosTiers[ci]
	if t == nil {
		return nil
	}
	return t.wait(ctx, j.chaosSched.TierFactor(ci, epoch), n)
}

// prefetchLookahead is how far (in stream positions) a class prefetcher may
// run ahead of the staging position. Running just ahead means the staging
// path finds the sample locally — one PFS read per sample — instead of the
// class and staging prefetchers racing each other to the filesystem.
const prefetchLookahead = 512

// classPrefetcher fills one storage class with its assigned samples, in
// first-access order, pacing itself to stay a bounded window ahead of the
// trainer's stream position.
func (j *Job) classPrefetcher(class int, fill []access.SampleID, next *atomic.Int64) {
	defer j.wg.Done()
	backend := j.backends[class]
	for {
		i := next.Add(1) - 1
		if int(i) >= len(fill) {
			return
		}
		k := fill[i]
		fp := j.assign.LocalPos(j.rank, k)
		// Pace: wait until the trainer is within the lookahead window of
		// this sample's first access.
		for int64(fp) > j.progress.Load()+prefetchLookahead {
			if j.isClosed() {
				return
			}
			//lint:ignore goroutine 1ms pacing poll bounded by the isClosed check above; Close stops it within one tick
			time.Sleep(time.Millisecond)
		}
		if j.isClosed() {
			return
		}
		if backend.Has(k) {
			continue // the staging path self-healed it already
		}
		if int64(fp) < j.progress.Load() {
			// Staging already passed the first access; it either cached
			// the sample itself or will re-fetch on the next epoch.
			continue
		}
		data, _, err := j.fetchFrom(k, int(j.progress.Load()), false)
		if err != nil {
			if !j.benign(err) {
				j.fail(err)
			}
			return
		}
		if _, err := backend.Put(j.ctx, k, data); err != nil {
			if !j.benign(err) {
				j.fail(err)
			}
			return
		}
	}
}

// stagingPrefetcher claims stream positions and stages samples in order.
func (j *Job) stagingPrefetcher() {
	defer j.wg.Done()
	for {
		if j.isClosed() {
			return
		}
		pos := int(j.pos.Add(1) - 1)
		if pos >= len(j.stream) {
			return
		}
		k := j.stream[pos]
		var fetchStart time.Time
		if j.met != nil {
			fetchStart = time.Now()
		}
		data, src, err := j.fetchFrom(k, pos, true)
		if err != nil {
			if !j.benign(err) {
				j.fail(err)
			}
			return
		}
		switch src {
		case SourcePFS:
			j.fetchPFS.Add(1)
		case SourceRemote:
			j.fetchRemote.Add(1)
		case SourceLocal:
			j.fetchLocal.Add(1)
		}
		if j.met != nil {
			j.met.stagedFetch(pos, k, j.epochOf(pos), src, len(data), time.Since(fetchStart).Seconds())
		}
		j.sourceMu.Lock()
		if j.sources == nil {
			j.sources = map[int]Source{}
		}
		j.sources[pos] = src
		j.sourceMu.Unlock()
		if err := j.staging.Push(j.ctx, pos, k, data); err != nil {
			if !j.benign(err) {
				j.fail(err)
			}
			return
		}
		j.met.stagingBytes(j.staging.Used())
		j.progress.Store(int64(pos))
	}
}

// epochOf maps a stream position to its training epoch (clamped to the
// plan's final epoch for the tail of uneven streams). A redistributed
// stream carries unequal epoch boundaries (epochEnds), so the epoch is the
// first boundary past pos; fault-free streams keep the uniform division.
func (j *Job) epochOf(pos int) int {
	if j.epochEnds != nil {
		e := sort.SearchInts(j.epochEnds, pos+1)
		if e >= len(j.epochEnds) {
			e = len(j.epochEnds) - 1
		}
		return e
	}
	if j.perEpoch <= 0 {
		return 0
	}
	e := pos / j.perEpoch
	if e >= j.plan.E {
		e = j.plan.E - 1
	}
	return e
}

// epochIter maps a stream position to the (epoch, iteration) pair Get
// reports. The fault-free branch is the exact legacy arithmetic; a
// redistributed stream derives the iteration from the offset into its
// unequal epoch chunk.
func (j *Job) epochIter(pos int) (int, int) {
	if j.epochEnds == nil {
		return pos / j.perEpoch, (pos % j.perEpoch) / j.opts.BatchPerWorker
	}
	e := j.epochOf(pos)
	start := 0
	if e > 0 {
		start = j.epochEnds[e-1]
	}
	return e, (pos - start) / j.opts.BatchPerWorker
}

// chaosSleep pauses the fetch path for the straggler pacing delay,
// interruptible by shutdown.
func (j *Job) chaosSleep(d time.Duration) {
	if d <= 0 {
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-j.closed:
	case <-j.ctx.Done():
	}
}

// fetchFrom retrieves sample k for stream position pos (see fetchSource),
// applying the straggler fault pacing: on a straggler rank, every fetch is
// stretched to Factor× its measured duration, slowing the whole prefetch
// pipeline the way a slow node's I/O path would.
func (j *Job) fetchFrom(k access.SampleID, pos int, selfHeal bool) ([]byte, Source, error) {
	if j.chaosSched == nil {
		return j.fetchSource(k, pos, selfHeal)
	}
	epoch := j.epochOf(pos)
	start := time.Now()
	data, src, err := j.fetchSource(k, pos, selfHeal)
	if err == nil {
		if factor := j.chaosSched.Slowdown(j.rank, epoch, j.plan.N); factor > 1 {
			j.chaosSleep(time.Duration(float64(time.Since(start)) * (factor - 1)))
		}
	}
	return data, src, err
}

// fetchSource retrieves sample k for stream position pos using the argmin
// source rule: local class if cached, else the best peer estimated to hold
// it (symmetric-progress heuristic), else the PFS. selfHeal additionally
// caches PFS fetches into the sample's assigned local class so a lagging
// class prefetcher is repaired opportunistically (paper Sec. 5.2.2).
func (j *Job) fetchSource(k access.SampleID, pos int, selfHeal bool) ([]byte, Source, error) {
	if j.isClosed() {
		return nil, SourcePFS, errJobClosed
	}
	// Local storage classes, fastest first.
	for ci, b := range j.backends {
		if data, ok, err := b.Get(j.ctx, k); err != nil {
			return nil, SourceLocal, err
		} else if ok {
			j.met.tierLookup(ci, true)
			// A degraded tier pays its bandwidth throttle on every read.
			if err := j.chaosTierWait(j.ctx, ci, j.epochOf(pos), int64(len(data))); err != nil {
				return nil, SourceLocal, err
			}
			return data, SourceLocal, nil
		}
		j.met.tierLookup(ci, false)
	}
	// Best remote holder per the clairvoyant placement + progress
	// heuristic. A holder the schedule says has crashed by this epoch is
	// demoted to the PFS without a call — the simulator's crashed-holder
	// reroute (sim.chaosAdjust), which never counts a false positive.
	if _, holder := j.assign.RemoteAvail(j.rank, k, int32(pos)); holder >= 0 &&
		!j.chaosSched.CrashedAt(holder, j.epochOf(pos), j.plan.N) {
		resp, err := j.remoteFetch(holder, k)
		switch {
		case err == nil && resp.OK:
			return resp.Data, SourceRemote, nil
		case err != nil:
			switch resilience.Classify(j.ctx, err) {
			case resilience.Aborted:
				// Our own context ended: abort the fetch, never mask the
				// cancellation as a miss (it would double-count a PFS
				// fallback and stall against a tearing-down run).
				return nil, SourceRemote, errJobClosed
			case resilience.PeerDown:
				// The peer is unreachable (dead endpoint or open
				// circuit): demote to the PFS. An open circuit never
				// reached the fabric, so only a real failed call counts
				// as a heuristic false positive.
				if !errors.Is(err, resilience.ErrCircuitOpen) {
					j.falsePos.Add(1)
					j.met.falsePositive()
				}
			default:
				// Transient failure (injected chaos drop, expired
				// per-attempt deadline) with the retry budget exhausted:
				// the PFS always remains available.
				j.falsePos.Add(1)
				j.met.falsePositive()
			}
		default:
			// Heuristic false positive: the holder has not cached it yet.
			j.falsePos.Add(1)
			j.met.falsePositive()
		}
	}
	if j.isClosed() {
		return nil, SourcePFS, errJobClosed
	}
	data, err := j.pfs.read(j.ctx, k)
	if err != nil {
		if j.ctx.Err() != nil {
			return nil, SourcePFS, errJobClosed
		}
		return nil, SourcePFS, fmt.Errorf("nopfs: pfs read of %d: %w", k, err)
	}
	if selfHeal {
		if c := j.assign.Local(j.rank, k); c >= 0 {
			if _, err := j.backends[c].Put(j.ctx, k, data); err != nil {
				return nil, SourcePFS, err
			}
		}
	}
	return data, SourcePFS, nil
}

// remoteFetch performs one peer fetch under the resilience policy. With
// the zero policy it is the legacy single attempt on the job's context;
// otherwise resilience.Do applies the per-attempt deadline, bounded
// deterministic backoff (keyed on seed/rank/peer/sequence, see
// resilience.Key), and the peer's circuit breaker — the repo's one
// sanctioned retry loop around fabric calls lives inside Do (`retrybound`
// analyzer). A response with OK=false is a heuristic miss, not a fault,
// and is never retried.
func (j *Job) remoteFetch(holder int, k access.SampleID) (transport.Response, error) {
	req := transport.Request{Kind: transport.KindFetch, Sample: k}
	if j.res.Empty() {
		return j.net.Call(j.ctx, holder, req)
	}
	var br *resilience.Breaker
	if j.breakers != nil {
		br = j.breakers[holder]
	}
	key := resilience.Key(j.opts.Seed, uint64(j.rank), uint64(holder), j.retrySeq.Add(1))
	return resilience.Do(j.ctx, j.res, br, key, resilience.Hooks{
		OnRetry: func(int, error) {
			j.retries.Add(1)
			j.met.retry()
		},
	}, func(ctx context.Context) (transport.Response, error) {
		return j.net.Call(ctx, holder, req)
	})
}

// crashNow enacts this rank's scheduled node crash: the job flips into
// teardown and the fabric endpoint closes, so peers observe a genuinely
// unreachable rank (refused dials on TCP, unreachable signal on the chan
// fabric) — not a polite shutdown handshake. Idempotent; the later
// Job.Close re-runs both steps harmlessly (endpoint Close is idempotent on
// every built-in fabric).
func (j *Job) crashNow() {
	j.crashOnce.Do(func() {
		j.shutdown()
		if j.cancel != nil {
			j.cancel()
		}
		j.net.Close()
	})
}

// Get returns the next sample of this worker's schedule. It blocks until
// the sample is staged and returns false when the run is complete. A fatal
// prefetch error surfaces as err; canceling ctx unblocks the call with
// ctx's error.
func (j *Job) Get(ctx context.Context) (Sample, bool, error) {
	if ctx == nil {
		//lint:ignore ctxfirst documented nil-ctx fallback: v1 callers passing nil get uncancellable Background semantics
		ctx = context.Background()
	}
	start := time.Now()
	e, err := j.staging.Pop(ctx)
	stalled := time.Since(start)
	j.stallNanos.Add(int64(stalled))
	j.met.stall(stalled.Seconds())
	if err != nil {
		if fatal := j.fatalErr(); fatal != nil {
			return Sample{}, false, fatal
		}
		if err != storage.ErrClosed {
			return Sample{}, false, err // ctx cancellation
		}
		return Sample{}, false, nil // clean end of stream (or Close)
	}
	j.sourceMu.Lock()
	src := j.sources[e.Pos]
	delete(j.sources, e.Pos)
	j.sourceMu.Unlock()

	j.delivered.Add(1)
	j.met.deliver()
	j.met.stagingBytes(j.staging.Used())
	if j.opts.VerifySamples {
		if err := verifyPayload(int(e.ID), e.Data); err != nil {
			return Sample{}, false, err
		}
	}
	epoch, iter := j.epochIter(e.Pos)
	s := Sample{
		ID:        int(e.ID),
		Label:     j.ds.Label(int(e.ID)),
		Data:      e.Data,
		Epoch:     epoch,
		Iteration: iter,
		Source:    src,
	}
	if e.Pos == len(j.stream)-1 {
		j.staging.Close()
		if j.crashEpoch >= 0 {
			// This rank's schedule ends at its crash: enact it now, so
			// peers see a dead endpoint rather than a rank idling at a
			// barrier until teardown.
			j.crashNow()
		}
	}
	return s, true, nil
}

// Samples returns the worker's sample stream as a range-over-func iterator:
//
//	for s, err := range job.Samples(ctx) {
//	        if err != nil { return err }
//	        train(s)
//	}
//
// The sequence ends when the schedule is exhausted; a fatal prefetch error
// or a context cancellation is yielded once as the final element's err.
// The iterator is single-use and not safe for concurrent iteration (each
// worker owns one Job).
func (j *Job) Samples(ctx context.Context) iter.Seq2[Sample, error] {
	return func(yield func(Sample, error) bool) {
		for {
			s, ok, err := j.Get(ctx)
			if err != nil {
				yield(Sample{}, err)
				return
			}
			if !ok {
				return
			}
			if !yield(s, nil) {
				return
			}
		}
	}
}

// GetBatch pulls up to n samples (n <= 0 means the configured
// BatchPerWorker) — the per-worker minibatch shape of the paper's training
// loop. The final batch of a run may be short; a nil, nil return means the
// schedule is exhausted. On error the samples delivered before the failure
// are returned alongside it.
func (j *Job) GetBatch(ctx context.Context, n int) ([]Sample, error) {
	if n <= 0 {
		n = j.opts.BatchPerWorker
		if n <= 0 {
			n = 1
		}
	}
	batch := make([]Sample, 0, n)
	for len(batch) < n {
		s, ok, err := j.Get(ctx)
		if err != nil {
			return batch, err
		}
		if !ok {
			break
		}
		batch = append(batch, s)
	}
	if len(batch) == 0 {
		return nil, nil
	}
	return batch, nil
}

// StreamLen returns the total number of samples this worker will consume.
func (j *Job) StreamLen() int { return len(j.stream) }

// IterationsPerEpoch returns the worker's batches per epoch.
func (j *Job) IterationsPerEpoch() int { return j.perEpoch / j.opts.BatchPerWorker }

// Rank returns this worker's rank in the cluster.
func (j *Job) Rank() int { return j.rank }

// Stats snapshots the worker's counters.
func (j *Job) Stats() Stats {
	var cached int64
	for _, b := range j.backends {
		cached += b.Used()
	}
	return Stats{
		Rank: j.rank,
		Fetches: map[Source]int64{
			SourcePFS:    j.fetchPFS.Load(),
			SourceRemote: j.fetchRemote.Load(),
			SourceLocal:  j.fetchLocal.Load(),
		},
		RemoteFalsePositives: j.falsePos.Load(),
		StallSeconds:         float64(j.stallNanos.Load()) / 1e9,
		Delivered:            j.delivered.Load(),
		CachedBytes:          cached,
		Retries:              j.retries.Load(),
		RedistributedRounds:  j.redistributed,
	}
}

// Close stops the prefetchers, cancels the job's lifetime context, and
// releases the fabric endpoint. Safe to call after the stream is exhausted
// or mid-run; it returns only after every prefetcher goroutine has exited.
//
//lint:ignore ctxfirst idiomatic io.Closer: shutdown()+cancel above the Wait stop every prefetcher, so the join is bounded
func (j *Job) Close() error {
	j.shutdown()
	if j.cancel != nil {
		j.cancel()
	}
	j.wg.Wait()
	return j.net.Close()
}
