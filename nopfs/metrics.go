package nopfs

import (
	"fmt"
	"io"
	"strconv"
	"sync"

	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/transport"
)

// This file threads the optional observability layer (internal/metrics)
// through the live path. Everything here is inert when Options.Metrics is
// nil: newJobMetrics returns nil, every jobMetrics method is nil-safe, and
// the hot paths guard their time.Now calls behind the nil check, so an
// uninstrumented run executes the exact pre-metrics code path.
//
// Exported series (all prefixed nopfs_):
//
//	nopfs_fetches_total{rank,source}            staged fetches by source
//	nopfs_fetch_seconds{rank,source}            staged fetch latency histogram
//	nopfs_tier_hits_total{rank,tier}            local-class lookup hits
//	nopfs_tier_misses_total{rank,tier}          local-class lookup misses
//	nopfs_remote_false_positives_total{rank}    predicted remote hits that missed
//	nopfs_stall_seconds_total{rank}             time Get waited on staging
//	nopfs_delivered_total{rank}                 samples handed to the trainer
//	nopfs_staging_bytes{rank}                   staging-buffer occupancy gauge
//	nopfs_limiter_wait_seconds_total{limiter}   bandwidth-limiter blocked time
//	nopfs_fabric_calls_total{rank,kind,ok}      outbound fabric calls
//	nopfs_fabric_call_seconds{rank}             outbound fabric call latency
//	nopfs_retries_total{rank}                   remote fetches retried (resilience)
//	nopfs_circuit_transitions_total{rank,peer,from,to}  breaker state changes
//	nopfs_peers_down_count{rank}                peers currently circuit-open
//	nopfs_redistributed_rounds_total{rank}      plan rounds absorbed from crashed peers
//
// (The peers-down gauge carries the _count unit suffix required by the
// metricnames analyzer.)

// MetricsRegistry is the metric sink threaded through a run (see
// WithMetrics); an alias so callers need not import internal packages.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry returns an empty registry to pass to WithMetrics and
// render with WritePrometheus after (or during) a run.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// jobMetrics holds one rank's pre-resolved series. A nil *jobMetrics (the
// metrics-off case) accepts every call as a no-op.
type jobMetrics struct {
	fetches    [3]*metrics.Counter // indexed by Source
	fetchSec   [3]*metrics.Histogram
	tierHits   []*metrics.Counter // indexed by class
	tierMiss   []*metrics.Counter
	falsePos   *metrics.Counter
	stallSec   *metrics.Counter
	delivered  *metrics.Counter
	staging    *metrics.Gauge
	retriesC   *metrics.Counter
	peersDownG *metrics.Gauge
	redistC    *metrics.Counter
	// reg is kept for the cold-path circuit-transition series, whose
	// from/to labels are resolved lazily (the registry memoises).
	reg   *metrics.Registry
	trace *traceWriter
	rank  int
}

// newJobMetrics resolves rank's series, or returns nil when reg is nil.
// trace, when non-nil, receives one line per staged fetch.
func newJobMetrics(reg *metrics.Registry, rank int, classes []Class, trace io.Writer) *jobMetrics {
	if reg == nil && trace == nil {
		return nil
	}
	m := &jobMetrics{rank: rank}
	if trace != nil {
		m.trace = &traceWriter{w: trace}
	}
	if reg == nil {
		return m
	}
	r := metrics.L("rank", strconv.Itoa(rank))
	for _, src := range []Source{SourcePFS, SourceRemote, SourceLocal} {
		s := metrics.L("source", src.String())
		m.fetches[src] = reg.Counter("nopfs_fetches_total",
			"Staged sample fetches by source.", r, s)
		m.fetchSec[src] = reg.Histogram("nopfs_fetch_seconds",
			"Staged sample fetch latency in seconds.", nil, r, s)
	}
	for _, c := range classes {
		tier := metrics.L("tier", c.Name)
		m.tierHits = append(m.tierHits, reg.Counter("nopfs_tier_hits_total",
			"Local storage-class lookups that hit.", r, tier))
		m.tierMiss = append(m.tierMiss, reg.Counter("nopfs_tier_misses_total",
			"Local storage-class lookups that missed.", r, tier))
	}
	m.falsePos = reg.Counter("nopfs_remote_false_positives_total",
		"Remote fetches the progress heuristic predicted would hit but missed.", r)
	m.stallSec = reg.Counter("nopfs_stall_seconds_total",
		"Total time Get waited on the staging buffer.", r)
	m.delivered = reg.Counter("nopfs_delivered_total",
		"Samples handed to the trainer.", r)
	m.staging = reg.Gauge("nopfs_staging_bytes",
		"Staging-buffer occupancy in bytes.", r)
	m.retriesC = reg.Counter("nopfs_retries_total",
		"Remote fetches retried under the resilience policy.", r)
	m.peersDownG = reg.Gauge("nopfs_peers_down_count",
		"Peers this rank currently holds circuit-open (marked down).", r)
	m.redistC = reg.Counter("nopfs_redistributed_rounds_total",
		"Plan rounds absorbed from crashed peers into this rank's stream.", r)
	m.reg = reg
	return m
}

// retry counts one remote-fetch retry.
func (m *jobMetrics) retry() {
	if m == nil || m.retriesC == nil {
		return
	}
	m.retriesC.Inc()
}

// peersDown moves the circuit-open peer gauge by delta (+1 on open, -1 on
// recovery).
func (m *jobMetrics) peersDown(delta float64) {
	if m == nil || m.peersDownG == nil {
		return
	}
	m.peersDownG.Add(delta)
}

// redistributedRounds records the plan rounds grafted onto this rank's
// stream at setup.
func (m *jobMetrics) redistributedRounds(n int) {
	if m == nil || m.redistC == nil || n <= 0 {
		return
	}
	m.redistC.Add(float64(n))
}

// circuitTransition records one per-peer breaker state change. This is the
// cold path (transitions are rare), so the labeled series is resolved
// through the registry's memoising lookup on each call.
func (m *jobMetrics) circuitTransition(peer int, from, to string) {
	if m == nil || m.reg == nil {
		return
	}
	m.reg.Counter("nopfs_circuit_transitions_total",
		"Per-peer circuit-breaker state transitions.",
		metrics.L("rank", strconv.Itoa(m.rank)), metrics.L("peer", strconv.Itoa(peer)),
		metrics.L("from", from), metrics.L("to", to)).Inc()
}

// stagedFetch records one staged fetch: counter, latency, and trace line.
func (m *jobMetrics) stagedFetch(pos int, id int32, epoch int, src Source, bytes int, seconds float64) {
	if m == nil {
		return
	}
	m.fetches[src].Inc()
	m.fetchSec[src].Observe(seconds)
	m.trace.line(m.rank, pos, id, epoch, src, bytes, seconds)
}

// tierLookup records one local-class probe (hit or miss).
func (m *jobMetrics) tierLookup(class int, hit bool) {
	if m == nil || class >= len(m.tierHits) {
		return
	}
	if hit {
		m.tierHits[class].Inc()
	} else {
		m.tierMiss[class].Inc()
	}
}

// falsePositive records one remote-fetch miss.
func (m *jobMetrics) falsePositive() {
	if m == nil {
		return
	}
	m.falsePos.Inc()
}

// stall accumulates consumer wait time.
func (m *jobMetrics) stall(seconds float64) {
	if m == nil {
		return
	}
	m.stallSec.Add(seconds)
}

// deliver counts one sample handed to the trainer.
func (m *jobMetrics) deliver() {
	if m == nil {
		return
	}
	m.delivered.Inc()
}

// stagingBytes updates the occupancy gauge.
func (m *jobMetrics) stagingBytes(n int64) {
	if m == nil {
		return
	}
	m.staging.Set(float64(n))
}

// syncWriter makes an arbitrary io.Writer safe for the cluster's concurrent
// rank traces: RunCluster wraps Options.TraceFetches in one shared syncWriter
// so callers may pass a plain file or buffer.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// traceWriter serialises per-fetch decision lines onto one shared writer.
// Each line is built in full and written in a single locked Write so lines
// from concurrent ranks and prefetcher threads never interleave.
type traceWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// line appends one fetch decision record:
//
//	rank=R pos=P sample=S epoch=E source=SRC bytes=B seconds=D
func (t *traceWriter) line(rank, pos int, id int32, epoch int, src Source, bytes int, seconds float64) {
	if t == nil {
		return
	}
	line := fmt.Sprintf("rank=%d pos=%d sample=%d epoch=%d source=%s bytes=%d seconds=%.6f\n",
		rank, pos, id, epoch, src, bytes, seconds)
	t.mu.Lock()
	defer t.mu.Unlock()
	io.WriteString(t.w, line)
}

// kindName labels a fabric request kind for the call counter.
func kindName(kind uint8) string {
	switch kind {
	case transport.KindFetch:
		return "fetch"
	case transport.KindValue:
		return "value"
	default:
		return "other"
	}
}

// instrumentFabric wraps each endpoint so outbound calls feed the fabric
// counters; with a nil registry the endpoints are returned untouched.
func instrumentFabric(reg *metrics.Registry, nets []Endpoint) []Endpoint {
	if reg == nil {
		return nets
	}
	for rank := range nets {
		r := metrics.L("rank", strconv.Itoa(rank))
		hist := reg.Histogram("nopfs_fabric_call_seconds",
			"Outbound fabric call latency in seconds.", nil, r)
		// Pre-resolve the four (kind, ok) counter cells the hot path can hit.
		calls := map[uint8][2]*metrics.Counter{}
		for _, kind := range []uint8{transport.KindFetch, transport.KindValue} {
			var cell [2]*metrics.Counter
			for i, ok := range []string{"false", "true"} {
				cell[i] = reg.Counter("nopfs_fabric_calls_total",
					"Outbound fabric calls by request kind and outcome.",
					r, metrics.L("kind", kindName(kind)), metrics.L("ok", ok))
			}
			calls[kind] = cell
		}
		nets[rank] = transport.Instrument(nets[rank], func(req transport.Request, ok bool, seconds float64) {
			cell, known := calls[req.Kind]
			if !known {
				return
			}
			if ok {
				cell[1].Inc()
			} else {
				cell[0].Inc()
			}
			hist.Observe(seconds)
		})
	}
	return nets
}

// observeLimiter attaches a wait-time counter to a limiter (no-op when reg
// is nil). The label identifies the limiter ("pfs", "tier:ram", ...).
func observeLimiter(reg *metrics.Registry, lim *storage.Limiter, name string) {
	if reg == nil {
		return
	}
	c := reg.Counter("nopfs_limiter_wait_seconds_total",
		"Total time blocked in bandwidth limiters.", metrics.L("limiter", name))
	lim.SetObserver(c.Add)
}
