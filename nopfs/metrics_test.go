package nopfs

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// metricsDataset builds a small dataset for the instrumented-run tests.
func metricsDataset(t *testing.T) Dataset {
	t.Helper()
	ds, err := dataset.Cached(dataset.Spec{
		Name: "metrics-test", F: 128, MeanSize: 8 << 10, StddevSize: 2 << 10,
		Classes: 4, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// parseProm parses Prometheus text exposition into series keyed by
// "name{label=value,...}" with the labels sorted, so key construction in
// assertions is order-independent.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[normalizeSeries(line[:i])] = v
	}
	return out
}

// normalizeSeries sorts a series key's labels.
func normalizeSeries(s string) string {
	open := strings.IndexByte(s, '{')
	if open < 0 || !strings.HasSuffix(s, "}") {
		return s
	}
	labels := strings.Split(s[open+1:len(s)-1], ",")
	sort.Strings(labels)
	return s[:open] + "{" + strings.Join(labels, ",") + "}"
}

// series builds a normalized series key from name and label pairs.
func series(name string, kv ...string) string {
	var labels []string
	for i := 0; i < len(kv); i += 2 {
		labels = append(labels, fmt.Sprintf("%s=%q", kv[i], kv[i+1]))
	}
	sort.Strings(labels)
	return name + "{" + strings.Join(labels, ",") + "}"
}

// sumPrefix sums every series of one metric name.
func sumPrefix(vals map[string]float64, name string) float64 {
	var sum float64
	for k, v := range vals {
		if k == name || strings.HasPrefix(k, name+"{") {
			sum += v
		}
	}
	return sum
}

// TestMetricsConsistentWithStats runs an instrumented chan-fabric cluster
// and checks the exported series against the Stats the run returns: fetch
// and delivery counters exactly, stall within float tolerance, and the
// paper-relevant signals (per-tier hits, stall, limiter waits) non-zero.
func TestMetricsConsistentWithStats(t *testing.T) {
	ds := metricsDataset(t)
	reg := NewMetricsRegistry()
	var trace bytes.Buffer
	opts := NewOptions(
		WithSeed(5),
		WithEpochs(2),
		WithBatchPerWorker(8),
		WithStagingBuffer(1<<20),
		WithClasses(Class{Name: "ram", CapacityBytes: 1 << 20, Threads: 2}),
		WithPFSBandwidth(2), // I/O-bound epoch 0: guarantees stalls and limiter waits
		WithMetrics(reg),
		WithFetchTrace(&trace),
	)
	const workers = 2
	stats, err := RunCluster(context.Background(), ds, workers, opts, DrainAll(nil))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	vals := parseProm(t, buf.String())

	var totalFetches int64
	for _, s := range stats {
		rank := strconv.Itoa(s.Rank)
		for _, src := range []Source{SourcePFS, SourceRemote, SourceLocal} {
			key := series("nopfs_fetches_total", "rank", rank, "source", src.String())
			if got, want := vals[key], float64(s.Fetches[src]); got != want {
				t.Errorf("%s = %v, want %v (Stats)", key, got, want)
			}
			totalFetches += s.Fetches[src]
			// The latency histogram's count must agree with the counter.
			hkey := series("nopfs_fetch_seconds_count", "rank", rank, "source", src.String())
			if got := vals[hkey]; got != float64(s.Fetches[src]) {
				t.Errorf("%s = %v, want %v", hkey, got, s.Fetches[src])
			}
		}
		dkey := series("nopfs_delivered_total", "rank", rank)
		if got, want := vals[dkey], float64(s.Delivered); got != want {
			t.Errorf("%s = %v, want %v", dkey, got, want)
		}
		skey := series("nopfs_stall_seconds_total", "rank", rank)
		if got := vals[skey]; math.Abs(got-s.StallSeconds) > 1e-3+0.01*s.StallSeconds {
			t.Errorf("%s = %v, Stats.StallSeconds = %v", skey, got, s.StallSeconds)
		}
		fkey := series("nopfs_remote_false_positives_total", "rank", rank)
		if got, want := vals[fkey], float64(s.RemoteFalsePositives); got != want {
			t.Errorf("%s = %v, want %v", fkey, got, want)
		}
	}

	// The acceptance signals: a live limited-PFS run must export non-zero
	// per-tier hits, stall, and limiter-wait series.
	if got := sumPrefix(vals, "nopfs_tier_hits_total"); got == 0 {
		t.Error("nopfs_tier_hits_total: all series zero, want ram hits after epoch 0")
	}
	if got := sumPrefix(vals, "nopfs_stall_seconds_total"); got == 0 {
		t.Error("nopfs_stall_seconds_total: all series zero, want stalls on a 2 MB/s PFS")
	}
	if got := vals[series("nopfs_limiter_wait_seconds_total", "limiter", "pfs")]; got == 0 {
		t.Error("nopfs_limiter_wait_seconds_total{limiter=\"pfs\"} = 0, want blocked time on a 2 MB/s PFS")
	}
	if got := sumPrefix(vals, "nopfs_fabric_calls_total"); got == 0 {
		t.Error("nopfs_fabric_calls_total: all series zero, want at least the startup allgather")
	}

	// The per-fetch decision trace: one line per staged fetch, parseable,
	// totals matching the counters.
	lines := strings.Split(strings.TrimSuffix(trace.String(), "\n"), "\n")
	if int64(len(lines)) != totalFetches {
		t.Fatalf("trace has %d lines, want %d (total fetches)", len(lines), totalFetches)
	}
	for _, line := range lines {
		var rank, pos, sample, epoch, bytesN int
		var src string
		var seconds float64
		if _, err := fmt.Sscanf(line, "rank=%d pos=%d sample=%d epoch=%d source=%s bytes=%d seconds=%f",
			&rank, &pos, &sample, &epoch, &src, &bytesN, &seconds); err != nil {
			t.Fatalf("unparseable trace line %q: %v", line, err)
		}
		if rank < 0 || rank >= workers || bytesN <= 0 {
			t.Fatalf("implausible trace line %q", line)
		}
	}
}

// TestMetricsOffExportsNothing pins the metrics-off contract: a run without
// WithMetrics must leave a fresh registry empty (nothing is registered
// globally), and the run itself succeeds on the uninstrumented path.
func TestMetricsOffExportsNothing(t *testing.T) {
	ds := metricsDataset(t)
	opts := NewOptions(
		WithSeed(5),
		WithEpochs(1),
		WithBatchPerWorker(8),
		WithClasses(Class{Name: "ram", CapacityBytes: 1 << 20}),
	)
	if _, err := RunCluster(context.Background(), ds, 2, opts, DrainAll(nil)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := NewMetricsRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("fresh registry exposition = %q, want empty", buf.String())
	}
}

// TestMetricsTraceOnly exercises the trace-without-registry path (newJobMetrics
// must not require a registry for tracing).
func TestMetricsTraceOnly(t *testing.T) {
	ds := metricsDataset(t)
	var trace bytes.Buffer
	opts := NewOptions(
		WithSeed(5),
		WithEpochs(1),
		WithBatchPerWorker(8),
		WithFetchTrace(&trace),
	)
	stats, err := RunCluster(context.Background(), ds, 2, opts, DrainAll(nil))
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, s := range stats {
		for _, n := range s.Fetches {
			want += n
		}
	}
	got := int64(strings.Count(trace.String(), "\n"))
	if got != want {
		t.Errorf("trace-only run wrote %d lines, want %d", got, want)
	}
}
