// Package nopfs is a Go implementation of NoPFS, the clairvoyant
// prefetching I/O middleware for distributed machine-learning training
// ("Clairvoyant Prefetching for Distributed Machine Learning I/O",
// SC 2021).
//
// Training with mini-batch SGD reads every sample exactly once per epoch in
// an order that is a pure function of a PRNG seed. Given that seed, NoPFS
// computes the entire access stream of every worker in advance and uses it
// to (1) prefetch samples into a staging buffer in exact consumption order,
// (2) place each worker's most frequently accessed samples in its fastest
// local storage class, and (3) serve cache misses from whichever location —
// local storage, a peer's cache, or the parallel filesystem — the
// performance model predicts is fastest.
//
// The package exposes the paper's iterator-style interface (Fig. 7): create
// a Job per worker and range over Samples (or call Get / GetBatch) until the
// run is exhausted. RunCluster runs an N-worker training job in one process
// for experimentation; the same Job runs over real TCP sockets by selecting
// the "tcp" fabric (WithFabric).
//
// The public surface is context-first and built from open extension points:
//
//   - Fabric — the communication substrate, selected by registry name
//     (chan and TCP built in, RegisterFabric for custom transports);
//   - StorageBackend — the byte store behind each storage class, selected
//     per class by kind (mem and dir built in, RegisterBackend for custom
//     stores);
//   - Option — functional options layered over the Options struct
//     (WithSeed, WithFabric, WithClasses, ...);
//   - Job.Samples — a range-over-func sample stream, and Job.GetBatch for
//     per-worker minibatch pulls.
//
// Every blocking call accepts a context.Context; canceling it tears the
// cluster down in bounded time with no leaked goroutines.
package nopfs

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/access"
	"repro/internal/chaos"
	"repro/internal/resilience"
	"repro/internal/storage"
)

// ChaosProfile declares a deterministic fault/degradation scenario for a
// run: straggler ranks, storage-tier degradation, fabric
// latency/jitter/transient failures, and node crashes (see internal/chaos).
// A crashed rank delivers its pre-crash prefix and then actually goes away
// (its fabric endpoint closes); its remaining plan rounds are redistributed
// round-robin across the survivors by the same rule the simulator uses, so
// sim-vs-live stall under one profile converges.
type ChaosProfile = chaos.Profile

// ResiliencePolicy bounds the live fetch path's fault handling: bounded
// seed-jittered retry/backoff for transient fabric failures, per-call
// deadlines, and a per-peer circuit breaker that demotes an unreachable
// peer to the PFS and re-probes it after a cooldown (see
// internal/resilience). The zero policy disables all of it — the run takes
// exactly the pre-resilience code path. DefaultResilience returns the tuned
// preset.
type ResiliencePolicy = resilience.Policy

// DefaultResilience returns the tuned resilience preset (the "default"
// spec of ParseResilience).
func DefaultResilience() ResiliencePolicy { return resilience.Default() }

// ParseResilience parses the -resilience flag grammar ("none", "default",
// or "retries:3,backoff:1ms..32ms,jitter:0.25,timeout:250ms,breaker:3@50ms"
// — see internal/resilience.ParsePolicy).
func ParseResilience(spec string) (ResiliencePolicy, error) {
	return resilience.ParsePolicy(spec)
}

// Dataset is the data source interface a Job ingests. Reading a sample by
// id is the only byte-producing operation; the middleware never requires
// directory listings or mutation. internal/dataset.Synthetic and FSDataset
// both satisfy it.
type Dataset interface {
	// Len returns the number of samples.
	Len() int
	// Size returns the byte size of sample id.
	Size(id int) int64
	// Label returns the class label of sample id.
	Label(id int) int
	// ReadSample returns the payload of sample id (a PFS read).
	ReadSample(id int) ([]byte, error)
}

// Class configures one local storage class, fastest first.
type Class struct {
	// Name labels the class in stats ("ram", "ssd").
	Name string
	// CapacityBytes bounds what the class may cache.
	CapacityBytes int64
	// Dir, when non-empty, makes the class filesystem-backed at that
	// path; otherwise it is an in-memory store.
	Dir string
	// Backend selects the storage-backend kind from the registry
	// (BackendMemory, BackendDir, or a custom RegisterBackend kind). Empty
	// means: BackendDir when Dir is set, else BackendMemory.
	Backend string
	// ReadMBps / WriteMBps emulate the class's aggregate bandwidth
	// (0 = unlimited). Useful for experiments on laptop hardware.
	ReadMBps, WriteMBps float64
	// Threads is the class's prefetcher thread count p_j (default 1).
	Threads int
}

// Options configures a training job.
type Options struct {
	// Seed generates every epoch's shuffle — the clairvoyance input. All
	// workers must use the same seed; Job verifies this with an allgather
	// of plan digests at startup.
	Seed uint64
	// Epochs is the number of passes over the dataset.
	Epochs int
	// BatchPerWorker is the per-worker mini-batch size.
	BatchPerWorker int
	// DropLast drops the trailing partial global batch each epoch.
	DropLast bool

	// StagingBytes is the staging-buffer budget (default 64 MiB).
	StagingBytes int64
	// StagingThreads is p0, the staging prefetcher width (default 4).
	StagingThreads int
	// Classes are the local cache levels, fastest first (may be empty:
	// the job still prefetches into the staging buffer clairvoyantly).
	Classes []Class

	// PFSAggregateMBps emulates the shared filesystem's aggregate random
	// read bandwidth across all workers (0 = unlimited).
	PFSAggregateMBps float64
	// InterconnectMBps emulates the fabric bandwidth (0 = unlimited).
	InterconnectMBps float64

	// VerifySamples CRC-checks every delivered payload against the
	// dataset's integrity envelope (internal/dataset format).
	VerifySamples bool

	// Metrics, when non-nil, receives runtime observability series (per-tier
	// hits/misses, fetch latency, stall time, limiter waits, fabric calls;
	// see nopfs/metrics.go for the full list). Nil runs the exact
	// uninstrumented code path.
	Metrics *MetricsRegistry
	// TraceFetches, when non-nil, receives one line per staged fetch (rank,
	// stream position, sample, epoch, source, bytes, duration). Writes are
	// serialised across ranks; the writer itself need not be thread-safe.
	TraceFetches io.Writer

	// Chaos is the fault/degradation scenario injected into the run: a
	// fault-wrapping fabric decorator (latency, jitter, transient fetch
	// failures), storage.Limiter throttles on degraded tiers, paced
	// straggler ranks, and enacted node crashes (the crashed rank delivers
	// its pre-crash prefix, closes its endpoint, and survivors absorb its
	// remaining plan rounds — see ChaosProfile). The zero value injects
	// nothing — runs are identical to a chaos-free build.
	Chaos ChaosProfile

	// Access is the workload access-pattern spec ("" = the classic uniform
	// per-epoch shuffle; see the -access grammar and presets in
	// internal/access.ParseAccessSpec). All workers must agree on it: any
	// non-uniform spec is folded into the plan digest the startup allgather
	// verifies. An elastic membership schedule
	// ("elastic:join=1@1,leave=2@2") re-partitions the plan at epoch
	// boundaries — a rank delivers nothing outside its membership window,
	// but its endpoint stays open and its cached bytes stay servable
	// (unlike a crash). Elastic schedules cannot combine with crash chaos
	// profiles.
	Access string

	// Resilience bounds the fetch path's handling of fabric failures:
	// retry/backoff, per-call deadlines, and per-peer circuit breaking
	// (see ResiliencePolicy). The zero value disables resilience — every
	// fabric error falls back to the PFS exactly as before, except that
	// context cancellation always aborts rather than masking as a miss.
	Resilience ResiliencePolicy

	// Fabric selects the cluster fabric by registry name (FabricChan,
	// FabricTCP, or a custom RegisterFabric name). Empty means FabricChan,
	// unless the deprecated UseTCP flag is set.
	Fabric string
	// UseTCP runs the cluster fabric over loopback TCP sockets instead of
	// in-process channels.
	//
	// Deprecated: set Fabric (or use WithFabric) instead. UseTCP is kept as
	// a compatibility shim — it is honoured only when Fabric is empty — and
	// will be removed in v2.
	UseTCP bool
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.StagingBytes <= 0 {
		o.StagingBytes = 64 << 20
	}
	if o.StagingThreads <= 0 {
		o.StagingThreads = 4
	}
	if o.Epochs <= 0 {
		o.Epochs = 1
	}
	if o.BatchPerWorker <= 0 {
		o.BatchPerWorker = 1
	}
	for i := range o.Classes {
		if o.Classes[i].Threads <= 0 {
			o.Classes[i].Threads = 1
		}
	}
	return o
}

// Validate reports whether the options are usable for the dataset and
// worker count.
func (o Options) Validate(ds Dataset, workers int) error {
	switch {
	case ds == nil:
		return errors.New("nopfs: nil dataset")
	case ds.Len() == 0:
		return errors.New("nopfs: empty dataset")
	case workers <= 0:
		return errors.New("nopfs: need at least one worker")
	case workers*o.BatchPerWorker > ds.Len():
		return fmt.Errorf("nopfs: global batch %d exceeds dataset size %d",
			workers*o.BatchPerWorker, ds.Len())
	}
	for _, c := range o.Classes {
		if c.CapacityBytes <= 0 {
			return fmt.Errorf("nopfs: class %q needs positive capacity", c.Name)
		}
		if _, err := BackendByKind(backendKind(c)); err != nil {
			return fmt.Errorf("nopfs: class %q: %w", c.Name, err)
		}
	}
	if err := o.Chaos.Validate(); err != nil {
		return err
	}
	pat, err := access.ParseAccessSpec(o.Access)
	if err != nil {
		return fmt.Errorf("nopfs: %w", err)
	}
	// Crash redistribution assumes every epoch contributes the same uniform
	// per-worker count, which an elastic membership schedule removes.
	if pat.Elastic() && o.Chaos.Structural() {
		return errors.New("nopfs: elastic access pattern cannot combine with a crash chaos profile")
	}
	if err := o.Resilience.Validate(); err != nil {
		return err
	}
	if _, err := o.fabric(); err != nil {
		return err
	}
	return nil
}

// Sample is one training sample delivered by Job.Get.
type Sample struct {
	// ID is the dataset sample index.
	ID int
	// Label is the dataset-provided class label.
	Label int
	// Data is the sample payload. The buffer belongs to the caller.
	Data []byte
	// Epoch and Iteration locate the sample in the training schedule.
	Epoch, Iteration int
	// Source reports where the staging prefetcher found the sample.
	Source Source
}

// Source identifies where a staged sample was fetched from.
type Source int

// Fetch sources, mirroring the paper's Fig. 12 categories.
const (
	// SourcePFS: read from the shared filesystem (the Dataset).
	SourcePFS Source = iota
	// SourceRemote: served from a peer worker's cache.
	SourceRemote
	// SourceLocal: served from this worker's own storage classes.
	SourceLocal
)

// String returns the stats label.
func (s Source) String() string {
	switch s {
	case SourcePFS:
		return "pfs"
	case SourceRemote:
		return "remote"
	case SourceLocal:
		return "local"
	default:
		return fmt.Sprintf("source(%d)", int(s))
	}
}

// Stats summarises one worker's run.
type Stats struct {
	Rank int
	// Fetches counts staging-buffer fetches by source.
	Fetches map[Source]int64
	// RemoteFalsePositives counts remote fetches the progress heuristic
	// predicted would hit but missed (each fell back to the PFS).
	RemoteFalsePositives int64
	// StallSeconds is the total time Get waited on the staging buffer.
	StallSeconds float64
	// Delivered is the number of samples handed to the trainer.
	Delivered int64
	// CachedBytes is what this worker's classes held at shutdown.
	CachedBytes int64
	// Retries counts remote-fetch attempts retried under the resilience
	// policy (0 with the zero policy).
	Retries int64
	// RedistributedRounds is how many plan rounds this rank absorbed from
	// crashed peers (0 without a crash profile).
	RedistributedRounds int64
}

// pfs wraps the Dataset with the shared-bandwidth limiter: the live
// system's parallel filesystem.
type pfs struct {
	ds      Dataset
	limiter *storage.Limiter
}

// read performs one PFS sample read under the bandwidth model. Canceling
// ctx interrupts the bandwidth wait.
func (p *pfs) read(ctx context.Context, id int32) ([]byte, error) {
	data, err := p.ds.ReadSample(int(id))
	if err != nil {
		return nil, err
	}
	if err := p.limiter.Wait(ctx, int64(len(data))); err != nil {
		return nil, err
	}
	return data, nil
}
