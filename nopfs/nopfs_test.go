package nopfs

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/access"
	"repro/internal/dataset"
)

func TestOptionsValidate(t *testing.T) {
	ds := testDataset(t, 64)
	if err := baseOptions().Validate(ds, 4); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	if err := baseOptions().Validate(nil, 4); err == nil {
		t.Error("nil dataset accepted")
	}
	if err := baseOptions().Validate(ds, 0); err == nil {
		t.Error("zero workers accepted")
	}
	if err := baseOptions().Validate(ds, 64); err == nil {
		t.Error("global batch > dataset accepted")
	}
	bad := baseOptions()
	bad.Classes[0].CapacityBytes = 0
	if err := bad.Validate(ds, 2); err == nil {
		t.Error("zero-capacity class accepted")
	}
}

func TestClusterDeliversExactSchedule(t *testing.T) {
	ds := testDataset(t, 96)
	opts := baseOptions()
	const workers = 4
	delivered, stats := runAndCollect(t, ds, workers, opts)

	// Every worker must receive exactly its clairvoyant stream, in order.
	plan := &access.Plan{
		Seed: opts.Seed, F: ds.Len(), N: workers, E: opts.Epochs,
		BatchPerWorker: opts.BatchPerWorker, DropLast: opts.DropLast,
	}
	for w := 0; w < workers; w++ {
		want := plan.WorkerStream(w)
		got := delivered[w]
		if len(got) != len(want) {
			t.Fatalf("worker %d delivered %d samples, want %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != int(want[i]) {
				t.Fatalf("worker %d position %d: got sample %d, want %d", w, i, got[i], want[i])
			}
		}
		if stats[w].Delivered != int64(len(want)) {
			t.Errorf("worker %d stats.Delivered = %d, want %d", w, stats[w].Delivered, len(want))
		}
	}

	// Across workers, each epoch covers the dataset exactly once.
	counts := make([]int, ds.Len())
	for w := 0; w < workers; w++ {
		for _, id := range delivered[w] {
			counts[id]++
		}
	}
	for id, c := range counts {
		if c != opts.Epochs {
			t.Fatalf("sample %d delivered %d times, want %d", id, c, opts.Epochs)
		}
	}
}

func TestClusterCacheHitsDominateAfterEpoch0(t *testing.T) {
	ds := testDataset(t, 64)
	opts := baseOptions()
	opts.Epochs = 4
	_, stats := runAndCollect(t, ds, 2, opts)
	for _, s := range stats {
		total := s.Fetches[SourcePFS] + s.Fetches[SourceRemote] + s.Fetches[SourceLocal]
		if total == 0 {
			t.Fatalf("rank %d: no fetches recorded", s.Rank)
		}
		pfsFrac := float64(s.Fetches[SourcePFS]) / float64(total)
		// 4 epochs, everything cacheable: at most ~1/4 of staging fetches
		// (the cold first epoch) plus heuristic misses should hit the PFS.
		if pfsFrac > 0.6 {
			t.Errorf("rank %d: PFS fraction %.2f, want caches to dominate", s.Rank, pfsFrac)
		}
		if s.CachedBytes == 0 {
			t.Errorf("rank %d cached nothing", s.Rank)
		}
	}
}

func TestClusterPayloadIntegrity(t *testing.T) {
	// VerifySamples is on in baseOptions: every payload crossing memory,
	// disk, and the fabric is CRC-checked on delivery. Additionally check
	// content equality directly.
	ds := testDataset(t, 48)
	opts := baseOptions()
	opts.Classes = append(opts.Classes, Class{
		Name: "ssd", CapacityBytes: 1 << 20, Dir: t.TempDir(), Threads: 1,
	})
	stats, err := RunCluster(bg, ds, 3, opts, DrainAll(func(s Sample) error {
		want, err := ds.ReadSample(s.ID)
		if err != nil {
			return err
		}
		if string(s.Data) != string(want) {
			return fmt.Errorf("sample %d bytes corrupted in flight", s.ID)
		}
		if s.Label != s.ID%10 {
			return fmt.Errorf("sample %d label %d, want %d", s.ID, s.Label, s.ID%10)
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("got %d stats", len(stats))
	}
}

func TestClusterOverTCP(t *testing.T) {
	ds := testDataset(t, 48)
	opts := baseOptions()
	opts.UseTCP = true
	opts.Epochs = 2
	delivered, stats := runAndCollect(t, ds, 3, opts)
	for w, ids := range delivered {
		if len(ids) == 0 {
			t.Fatalf("worker %d delivered nothing over TCP", w)
		}
	}
	var remote int64
	for _, s := range stats {
		remote += s.Fetches[SourceRemote]
	}
	if remote == 0 {
		t.Error("no remote fetches crossed the TCP fabric")
	}
}

func TestClusterEpochIterationBookkeeping(t *testing.T) {
	ds := testDataset(t, 64)
	opts := baseOptions()
	opts.Epochs = 2
	_, err := RunCluster(bg, ds, 2, opts, func(ctx context.Context, j *Job) error {
		perEpoch := j.StreamLen() / opts.Epochs
		n := 0
		for {
			s, ok, err := j.Get(ctx)
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			wantEpoch := n / perEpoch
			if s.Epoch != wantEpoch {
				return fmt.Errorf("sample %d reported epoch %d, want %d", n, s.Epoch, wantEpoch)
			}
			wantIter := (n % perEpoch) / opts.BatchPerWorker
			if s.Iteration != wantIter {
				return fmt.Errorf("sample %d reported iteration %d, want %d", n, s.Iteration, wantIter)
			}
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClusterSeedMismatchCaught(t *testing.T) {
	// Workers with diverging plans must fail the startup allgather. Build
	// jobs by hand through RunCluster's machinery: simulate divergence by
	// wrapping the dataset so one rank sees a different length — the
	// validation path, and the digest check via direct construction, are
	// both exercised in internal tests; here check the public surface:
	// identical options must succeed.
	ds := testDataset(t, 32)
	opts := baseOptions()
	opts.Epochs = 1
	if _, err := RunCluster(bg, ds, 2, opts, DrainAll(nil)); err != nil {
		t.Fatalf("consistent cluster failed: %v", err)
	}
}

func TestClusterNoLocalStorage(t *testing.T) {
	// With no cache classes at all, NoPFS still works (staging-only mode,
	// everything from PFS/remote-less).
	ds := testDataset(t, 32)
	opts := baseOptions()
	opts.Classes = nil
	opts.Epochs = 2
	delivered, stats := runAndCollect(t, ds, 2, opts)
	for w := range delivered {
		if len(delivered[w]) == 0 {
			t.Fatalf("worker %d starved", w)
		}
	}
	for _, s := range stats {
		if s.Fetches[SourceLocal] != 0 || s.Fetches[SourceRemote] != 0 {
			t.Errorf("rank %d: local/remote fetches without storage classes", s.Rank)
		}
		if s.CachedBytes != 0 {
			t.Errorf("rank %d cached bytes without classes", s.Rank)
		}
	}
}

func TestClusterWithBandwidthLimits(t *testing.T) {
	// Rate-limited PFS and interconnect: the run must still complete and
	// deliver everything correctly (timing changes only).
	ds := testDataset(t, 32)
	opts := baseOptions()
	opts.Epochs = 2
	opts.PFSAggregateMBps = 8
	opts.InterconnectMBps = 64
	opts.Classes[0].ReadMBps = 512
	opts.Classes[0].WriteMBps = 256
	delivered, _ := runAndCollect(t, ds, 2, opts)
	total := 0
	for _, ids := range delivered {
		total += len(ids)
	}
	if total != 32*2 {
		t.Fatalf("delivered %d samples, want 64", total)
	}
}

func TestStatsStallAccounting(t *testing.T) {
	ds := testDataset(t, 32)
	opts := baseOptions()
	opts.Epochs = 1
	_, stats := runAndCollect(t, ds, 2, opts)
	for _, s := range stats {
		if s.StallSeconds < 0 {
			t.Errorf("negative stall time: %v", s.StallSeconds)
		}
	}
}

func TestFalsePositivesBounded(t *testing.T) {
	// Heuristic misses are legal but must be a small minority of fetches.
	ds := testDataset(t, 128)
	opts := baseOptions()
	opts.Epochs = 4
	_, stats := runAndCollect(t, ds, 4, opts)
	for _, s := range stats {
		if s.RemoteFalsePositives > s.Delivered/2 {
			t.Errorf("rank %d: %d false positives out of %d samples",
				s.Rank, s.RemoteFalsePositives, s.Delivered)
		}
	}
}

func TestSourceStringAndSampleFields(t *testing.T) {
	if SourcePFS.String() != "pfs" || SourceRemote.String() != "remote" || SourceLocal.String() != "local" {
		t.Error("source labels wrong")
	}
	if Source(9).String() == "" {
		t.Error("unknown source empty")
	}
}

func BenchmarkClusterEndToEnd(b *testing.B) {
	ds := dataset.MustNew(dataset.Spec{
		Name: "bench", F: 256, MeanSize: 4096, Classes: 10, Seed: 3,
	})
	opts := Options{
		Seed: 9, Epochs: 2, BatchPerWorker: 8,
		StagingBytes: 1 << 20, StagingThreads: 4,
		Classes: []Class{{Name: "ram", CapacityBytes: 2 << 20, Threads: 2}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunCluster(bg, ds, 4, opts, DrainAll(nil)); err != nil {
			b.Fatal(err)
		}
	}
}
