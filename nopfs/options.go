package nopfs

// This file is the functional-options layer of the v1 API. Options remains
// an ordinary struct — existing literals keep working — and every Option is
// a pure mutation of it, so the two styles compose:
//
//	opts := nopfs.NewOptions(
//	        nopfs.WithSeed(42),
//	        nopfs.WithEpochs(3),
//	        nopfs.WithClasses(nopfs.Class{Name: "ram", CapacityBytes: 64 << 20}),
//	        nopfs.WithFabric(nopfs.FabricTCP),
//	)
//	stats, err := nopfs.RunCluster(ctx, ds, workers, opts, fn)

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Option mutates an Options value; see NewOptions.
type Option func(*Options)

// NewOptions builds an Options from functional options, applied in order
// over the zero value (unset fields take the usual defaults at run time).
func NewOptions(opts ...Option) Options {
	var o Options
	for _, apply := range opts {
		apply(&o)
	}
	return o
}

// WithOptions replaces the whole Options value — the bridge from
// struct-literal configuration into the functional style (later options
// still apply on top).
func WithOptions(base Options) Option {
	return func(o *Options) { *o = base }
}

// WithSeed sets the shuffle seed — the clairvoyance input.
func WithSeed(seed uint64) Option {
	return func(o *Options) { o.Seed = seed }
}

// WithEpochs sets the number of passes over the dataset.
func WithEpochs(n int) Option {
	return func(o *Options) { o.Epochs = n }
}

// WithBatchPerWorker sets the per-worker mini-batch size.
func WithBatchPerWorker(n int) Option {
	return func(o *Options) { o.BatchPerWorker = n }
}

// WithDropLast drops the trailing partial global batch each epoch.
func WithDropLast(drop bool) Option {
	return func(o *Options) { o.DropLast = drop }
}

// WithStagingBuffer sets the staging-buffer byte budget.
func WithStagingBuffer(bytes int64) Option {
	return func(o *Options) { o.StagingBytes = bytes }
}

// WithStagingThreads sets p0, the staging prefetcher width.
func WithStagingThreads(n int) Option {
	return func(o *Options) { o.StagingThreads = n }
}

// WithClasses replaces the storage-class hierarchy, fastest first.
func WithClasses(classes ...Class) Option {
	return func(o *Options) { o.Classes = append([]Class(nil), classes...) }
}

// WithClass appends one storage class to the hierarchy.
func WithClass(c Class) Option {
	return func(o *Options) { o.Classes = append(o.Classes, c) }
}

// WithPFSBandwidth emulates the shared filesystem's aggregate random-read
// bandwidth in MB/s (0 = unlimited).
func WithPFSBandwidth(mbps float64) Option {
	return func(o *Options) { o.PFSAggregateMBps = mbps }
}

// WithInterconnectBandwidth emulates the fabric bandwidth in MB/s
// (0 = unlimited).
func WithInterconnectBandwidth(mbps float64) Option {
	return func(o *Options) { o.InterconnectMBps = mbps }
}

// WithVerifySamples CRC-checks every delivered payload.
func WithVerifySamples(verify bool) Option {
	return func(o *Options) { o.VerifySamples = verify }
}

// WithFabric selects the cluster fabric by registry name (FabricChan,
// FabricTCP, or a custom RegisterFabric name). It supersedes the deprecated
// Options.UseTCP switch.
func WithFabric(name string) Option {
	return func(o *Options) { o.Fabric = name }
}

// WithChaos injects a deterministic fault/degradation scenario into the run
// (see ChaosProfile). The empty profile injects nothing.
func WithChaos(p ChaosProfile) Option {
	return func(o *Options) { o.Chaos = p }
}

// WithAccessPattern sets the workload access pattern by preset name or spec
// ("zipf", "hot-set", "curriculum:buckets=8", "elastic:join=1@1", ...; see
// internal/access.ParseAccessSpec). The empty spec is the classic uniform
// per-epoch shuffle.
func WithAccessPattern(spec string) Option {
	return func(o *Options) { o.Access = spec }
}

// WithMembership declares an elastic membership schedule from explicit
// events: joins[rank] is the epoch the rank joins at (it delivers nothing
// earlier), leaves[rank] the epoch it leaves at (it delivers nothing from
// then on, but keeps serving its cached bytes to peers). Epochs count from
// 1 — every run needs one full-membership epoch. It overwrites any previous
// access pattern; empty maps reset to the uniform pattern.
func WithMembership(joins, leaves map[int]int) Option {
	return func(o *Options) {
		var parts []string
		for _, r := range sortedRanks(joins) {
			parts = append(parts, fmt.Sprintf("join=%d@%d", r, joins[r]))
		}
		for _, r := range sortedRanks(leaves) {
			parts = append(parts, fmt.Sprintf("leave=%d@%d", r, leaves[r]))
		}
		if len(parts) == 0 {
			o.Access = ""
			return
		}
		o.Access = "elastic:" + strings.Join(parts, ",")
	}
}

// sortedRanks returns the map's keys in ascending order, so the constructed
// spec is deterministic regardless of map iteration order.
func sortedRanks(events map[int]int) []int {
	ranks := make([]int, 0, len(events))
	for r := range events {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}

// WithResilience bounds the fetch path's fault handling — retry/backoff,
// per-call deadlines, per-peer circuit breaking (see ResiliencePolicy,
// DefaultResilience). The zero policy disables resilience.
func WithResilience(p ResiliencePolicy) Option {
	return func(o *Options) { o.Resilience = p }
}

// WithMetrics threads a metric registry through the run (see
// NewMetricsRegistry); render it after the run with WritePrometheus.
func WithMetrics(reg *MetricsRegistry) Option {
	return func(o *Options) { o.Metrics = reg }
}

// WithFetchTrace streams one decision line per staged fetch to w.
func WithFetchTrace(w io.Writer) Option {
	return func(o *Options) { o.TraceFetches = w }
}

// fabricName resolves the effective fabric name: an explicit Fabric wins;
// the deprecated UseTCP flag maps to FabricTCP; the default is FabricChan.
func (o Options) fabricName() string {
	switch {
	case o.Fabric != "":
		return o.Fabric
	case o.UseTCP:
		return FabricTCP
	default:
		return FabricChan
	}
}

// fabric resolves the run's Fabric from the registry, applying the UseTCP
// compatibility shim.
func (o Options) fabric() (Fabric, error) {
	return FabricByName(o.fabricName())
}
