package nopfs

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/storage"
)

func TestFunctionalOptionsCompose(t *testing.T) {
	opts := NewOptions(
		WithSeed(7),
		WithEpochs(5),
		WithBatchPerWorker(8),
		WithDropLast(true),
		WithStagingBuffer(1<<20),
		WithStagingThreads(3),
		WithClasses(Class{Name: "ram", CapacityBytes: 1 << 20}),
		WithClass(Class{Name: "ssd", CapacityBytes: 2 << 20, Dir: t.TempDir()}),
		WithPFSBandwidth(64),
		WithInterconnectBandwidth(128),
		WithVerifySamples(true),
		WithFabric(FabricTCP),
	)
	if opts.Seed != 7 || opts.Epochs != 5 || opts.BatchPerWorker != 8 || !opts.DropLast {
		t.Errorf("schedule options not applied: %+v", opts)
	}
	if opts.StagingBytes != 1<<20 || opts.StagingThreads != 3 {
		t.Errorf("staging options not applied: %+v", opts)
	}
	if len(opts.Classes) != 2 || opts.Classes[0].Name != "ram" || opts.Classes[1].Name != "ssd" {
		t.Errorf("class options not applied: %+v", opts.Classes)
	}
	if opts.PFSAggregateMBps != 64 || opts.InterconnectMBps != 128 || !opts.VerifySamples {
		t.Errorf("bandwidth/verify options not applied: %+v", opts)
	}
	if opts.Fabric != FabricTCP {
		t.Errorf("fabric option not applied: %q", opts.Fabric)
	}
	// WithOptions bridges struct literals into the functional style; later
	// options still win.
	base := baseOptions()
	layered := NewOptions(WithOptions(base), WithSeed(99))
	if layered.Epochs != base.Epochs || layered.Seed != 99 {
		t.Errorf("WithOptions layering wrong: %+v", layered)
	}
}

// TestUseTCPFabricShim pins the deprecation satellite: the legacy UseTCP
// switch still selects the TCP fabric, but only while the new Fabric field
// is unset.
func TestUseTCPFabricShim(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"default", Options{}, FabricChan},
		{"legacy UseTCP", Options{UseTCP: true}, FabricTCP},
		{"explicit fabric wins over UseTCP", Options{UseTCP: true, Fabric: FabricChan}, FabricChan},
		{"WithFabric", NewOptions(WithFabric(FabricTCP)), FabricTCP},
		{"WithFabric over legacy", NewOptions(WithOptions(Options{UseTCP: true}), WithFabric(FabricChan)), FabricChan},
	}
	for _, tc := range cases {
		if got := tc.opts.fabricName(); got != tc.want {
			t.Errorf("%s: fabricName() = %q, want %q", tc.name, got, tc.want)
		}
		f, err := tc.opts.fabric()
		if err != nil || f.Name() != tc.want {
			t.Errorf("%s: fabric() = %v, %v", tc.name, f, err)
		}
	}
	// And end to end: a UseTCP cluster still runs over real sockets.
	ds := testDataset(t, 32)
	opts := baseOptions()
	opts.UseTCP = true
	opts.Epochs = 1
	if _, err := RunCluster(context.Background(), ds, 2, opts, DrainAll(nil)); err != nil {
		t.Fatalf("legacy UseTCP cluster failed: %v", err)
	}
}

func TestFabricRegistry(t *testing.T) {
	names := FabricNames()
	if len(names) < 2 || names[0] != FabricChan {
		t.Fatalf("FabricNames() = %v, want sorted with %q first", names, FabricChan)
	}
	for _, n := range []string{FabricChan, FabricTCP} {
		f, err := FabricByName(n)
		if err != nil || f.Name() != n {
			t.Errorf("FabricByName(%q) = %v, %v", n, f, err)
		}
	}
	if _, err := FabricByName("bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("unknown fabric error = %v", err)
	}
	// Validate surfaces an unknown fabric before any endpoint is built.
	opts := baseOptions()
	opts.Fabric = "bogus"
	if err := opts.Validate(testDataset(t, 32), 2); err == nil {
		t.Error("Validate accepted an unknown fabric")
	}
}

// countingBackend wraps the in-memory store to prove custom backends flow
// through the registry into a live cluster.
type countingBackend struct {
	StorageBackend
	puts *atomic.Int64
}

func (c countingBackend) Put(ctx context.Context, id int32, data []byte) (bool, error) {
	c.puts.Add(1)
	return c.StorageBackend.Put(ctx, id, data)
}

func TestCustomBackendKind(t *testing.T) {
	var puts atomic.Int64
	RegisterBackend("test-counting", func(_ context.Context, _ int, c Class) (StorageBackend, error) {
		return countingBackend{
			StorageBackend: storage.NewMemory(c.Name, c.CapacityBytes, nil, nil),
			puts:           &puts,
		}, nil
	})
	kinds := BackendKinds()
	found := false
	for _, k := range kinds {
		found = found || k == "test-counting"
	}
	if !found {
		t.Fatalf("BackendKinds() = %v, missing test-counting", kinds)
	}

	ds := testDataset(t, 48)
	opts := baseOptions()
	opts.Classes = []Class{{Name: "ram", CapacityBytes: 256 << 10, Backend: "test-counting", Threads: 1}}
	opts.Epochs = 2
	if _, err := RunCluster(context.Background(), ds, 2, opts, DrainAll(nil)); err != nil {
		t.Fatal(err)
	}
	if puts.Load() == 0 {
		t.Error("custom backend kind never received a Put")
	}
	// Unknown kinds fail validation up front.
	opts.Classes[0].Backend = "no-such-kind"
	if err := opts.Validate(ds, 2); err == nil {
		t.Error("Validate accepted an unknown backend kind")
	}
}

// TestBackendKindDefaults pins the kind-resolution rule: Dir selects the
// directory store, everything else the memory store, explicit Backend wins.
func TestBackendKindDefaults(t *testing.T) {
	if k := backendKind(Class{}); k != BackendMemory {
		t.Errorf("bare class kind = %q", k)
	}
	if k := backendKind(Class{Dir: "/x"}); k != BackendDir {
		t.Errorf("dir class kind = %q", k)
	}
	if k := backendKind(Class{Dir: "/x", Backend: BackendMemory}); k != BackendMemory {
		t.Errorf("explicit backend lost to Dir: %q", k)
	}
}

// TestGetBatchShapes pins the minibatch API: full batches, the short final
// batch, and the nil end-of-stream marker.
func TestGetBatchShapes(t *testing.T) {
	ds := testDataset(t, 36)
	opts := baseOptions()
	opts.Epochs = 1
	opts.BatchPerWorker = 4
	_, err := RunCluster(context.Background(), ds, 2, opts, func(ctx context.Context, j *Job) error {
		total := 0
		for {
			b, err := j.GetBatch(ctx, 0) // 0 = the configured BatchPerWorker
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			if len(b) > opts.BatchPerWorker {
				t.Errorf("batch of %d exceeds BatchPerWorker %d", len(b), opts.BatchPerWorker)
			}
			total += len(b)
		}
		if total != j.StreamLen() {
			t.Errorf("GetBatch delivered %d samples, want %d", total, j.StreamLen())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
