package nopfs

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/access"
	"repro/internal/chaos"
)

// The chaos-soak tier: the live fault matrix — both fabrics crossed with
// the structural and non-structural chaos presets — run under the default
// resilience policy, asserting the delivery laws that must survive faults:
//
//   - every rank delivers exactly its scheduled stream, reshaped by crash
//     redistribution when the preset crashes a node;
//   - the union of deliveries conserves the plan (exactly once, nothing
//     lost, nothing duplicated);
//   - teardown leaks no goroutines even when a crashed rank closes its
//     endpoint mid-run.
//
// CI runs this file with -race (`make chaos-soak`), where the concurrent
// retry/breaker/crash machinery gets its memory-model audit.

// soakPresets are the chaos presets the soak crosses with each fabric:
// a pure node crash, a pure fabric fault, and the combined meltdown
// (straggler + degraded tiers + crash + flaky fabric).
var soakPresets = []string{"node-crash", "flaky-fabric", "meltdown"}

// soakStreams computes the delivery oracle for one soak run: each rank's
// plan stream reshaped by the profile's crash schedule.
func soakStreams(f, workers int, opts Options) [][]access.SampleID {
	plan := &access.Plan{
		Seed: opts.Seed, F: f, N: workers, E: opts.Epochs,
		BatchPerWorker: opts.BatchPerWorker, DropLast: opts.DropLast,
	}
	streams := make([][]access.SampleID, workers)
	for w := range streams {
		streams[w] = plan.WorkerStream(w)
	}
	sched := opts.Chaos.Compile(opts.Seed)
	reshaped, _ := sched.SurvivorStreams(workers, opts.Epochs, plan.SamplesPerEpoch,
		func(w int) []access.SampleID { return streams[w] })
	return reshaped
}

func TestChaosSoak(t *testing.T) {
	seeds := []uint64{1234, 99}
	if testing.Short() {
		seeds = seeds[:1]
	}
	before := runtime.NumGoroutine()
	for _, fabric := range []string{FabricChan, FabricTCP} {
		for _, preset := range soakPresets {
			for _, seed := range seeds {
				t.Run(fmt.Sprintf("%s/%s/seed%d", fabric, preset, seed), func(t *testing.T) {
					profile, err := chaos.ParseProfile(preset)
					if err != nil {
						t.Fatal(err)
					}
					const workers, f = 3, 48
					opts := baseOptions()
					opts.Seed = seed
					opts.Fabric = fabric
					opts.Chaos = profile
					opts.Resilience = DefaultResilience()

					ds := testDataset(t, f)
					delivered, stats := runAndCollect(t, ds, workers, opts)

					want := soakStreams(f, workers, opts)
					for w := 0; w < workers; w++ {
						if len(delivered[w]) != len(want[w]) {
							t.Fatalf("rank %d delivered %d samples, want %d", w, len(delivered[w]), len(want[w]))
						}
						for i := range want[w] {
							if delivered[w][i] != int(want[w][i]) {
								t.Fatalf("rank %d position %d: got %d, want %d", w, i, delivered[w][i], want[w][i])
							}
						}
					}
					for _, s := range stats {
						if s.StallSeconds < 0 {
							t.Errorf("rank %d: negative stall %g", s.Rank, s.StallSeconds)
						}
					}
				})
			}
		}
	}
	// One settle check over the whole matrix: a leak in any cell surfaces
	// here, including endpoints closed mid-run by crash enactment.
	goroutinesSettle(t, before+2)
}
