package nopfs

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
)

// Shared cluster/job test setup. Every test file in this package builds
// clusters from the same few shapes; keeping the helpers here means new test
// tiers (cancellation, grids, chaos) extend one copy instead of pasting a
// fourth.

// bg is the default context for tests that exercise the data paths rather
// than cancellation (see cancel_test.go for the cancellation tier).
var bg = context.Background()

// testDataset builds the standard synthetic dataset of f samples (2 KB mean
// payload, 10 classes, fixed seed).
func testDataset(t testing.TB, f int) *dataset.Synthetic {
	t.Helper()
	return dataset.MustNew(dataset.Spec{
		Name: "live", F: f, MeanSize: 2048, StddevSize: 512, Classes: 10, Seed: 21,
	})
}

// baseOptions is the standard small-cluster configuration: 3 epochs, one
// 256 KB RAM class, verified payloads.
func baseOptions() Options {
	return Options{
		Seed:           1234,
		Epochs:         3,
		BatchPerWorker: 4,
		StagingBytes:   64 << 10,
		StagingThreads: 3,
		Classes: []Class{
			{Name: "ram", CapacityBytes: 256 << 10, Threads: 2},
		},
		VerifySamples: true,
	}
}

// runAndCollect runs a cluster and returns every worker's delivered sample
// ids in order.
func runAndCollect(t *testing.T, ds Dataset, workers int, opts Options) ([][]int, []Stats) {
	t.Helper()
	delivered := make([][]int, workers)
	var mu sync.Mutex
	stats, err := RunCluster(bg, ds, workers, opts, func(ctx context.Context, j *Job) error {
		var ids []int
		for s, err := range j.Samples(ctx) {
			if err != nil {
				return err
			}
			ids = append(ids, s.ID)
		}
		mu.Lock()
		delivered[j.Rank()] = ids
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return delivered, stats
}

// goroutinesSettle polls until the live goroutine count drops back to (or
// below) want, failing with a full stack dump if it does not: the leak
// check behind the cancellation contract.
func goroutinesSettle(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d live, want <= %d\n%s", runtime.NumGoroutine(), want, buf[:n])
}
