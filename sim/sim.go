// Package sim is the public façade of the NoPFS I/O performance simulator
// (paper Sec. 6): it re-exports scenario presets for every panel of Fig. 8,
// the Fig. 9 environment sweep, the policy registry, and the concurrent
// sweep engine, so downstream users can compare I/O strategies for their own
// dataset/cluster combinations without touching internal packages.
package sim

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/perfmodel"
	isim "repro/internal/sim"
	"repro/internal/sweep"
)

// Re-exported core types.
type (
	// Config describes one simulation run.
	Config = isim.Config
	// Result summarises one policy's simulated execution.
	Result = isim.Result
	// Policy is one I/O strategy.
	Policy = isim.Policy
	// Scenario is a Fig. 8 panel preset.
	Scenario = isim.Scenario
	// SweepPoint is one Fig. 9 configuration.
	SweepPoint = sweep.SweepPoint
)

// Re-exported sweep-engine types: a Grid of (scenario × policy × replica)
// cells executed by a Runner on a bounded goroutine pool, reported as raw
// cells plus mean/CI Summaries. The engine is generic: a cell is any
// function of a derived seed (CellFunc) returning a metric-bag Outcome, so
// the same Runner also executes trainer experiment grids and live-cluster
// grids (see internal/trainer and package nopfs).
type (
	// Grid is a (scenario × policy × replica) experiment plan.
	Grid = sweep.Grid
	// GridScenario is one grid row: a named config factory.
	GridScenario = sweep.ScenarioSpec
	// GridPolicy is one grid column: a named policy constructor.
	GridPolicy = sweep.PolicySpec
	// CellFunc executes one grid cell from its derived seed.
	CellFunc = sweep.CellFunc
	// Outcome is the engine-visible result of one cell.
	Outcome = sweep.Outcome
	// Metric declares one column of a grid's result schema.
	Metric = sweep.Metric
	// ProfileSpec is one column of a grid's optional fault-profile axis.
	ProfileSpec = sweep.ProfileSpec
	// AccessSpec is one column of a grid's optional access-pattern axis.
	AccessSpec = sweep.AccessSpec
	// Runner executes grids; Parallel bounds the goroutine pool.
	Runner = sweep.Runner
	// Report is the deterministic raw outcome of one grid execution.
	Report = sweep.Report
	// Summary is the per-(scenario, policy) replica aggregate.
	Summary = sweep.Summary
	// CellResult pairs one grid cell with its outcome.
	CellResult = sweep.CellResult
	// Aggregator consumes a grid execution incrementally (Runner.RunStream):
	// giant grids stream through encoders without holding every Result.
	Aggregator = sweep.Aggregator
	// AggregatorMeta describes a grid execution to aggregators up front.
	AggregatorMeta = sweep.Meta
	// ResultMemo caches simulator cell outcomes by configuration digest for
	// incremental re-simulation (Runner.Memo).
	ResultMemo = sweep.ResultMemo
)

// Simulator metric names: the keys of the default schema's Outcome.Values
// and Summary.Metrics.
const (
	MetricExec     = sweep.MetricExec
	MetricStall    = sweep.MetricStall
	MetricSetup    = sweep.MetricSetup
	MetricCoverage = sweep.MetricCoverage
	MetricPFS      = sweep.MetricPFS
	MetricRemote   = sweep.MetricRemote
	MetricLocal    = sweep.MetricLocal
)

// Policy constructors and registry.
var (
	// NewNoPFS builds the paper's policy.
	NewNoPFS = isim.NewNoPFS
	// NewLowerBound builds the no-stall Perfect baseline.
	NewLowerBound = isim.NewLowerBound
	// NewNaive builds synchronous PFS loading.
	NewNaive = isim.NewNaive
	// NewStagingBuffer builds the double-buffering baseline.
	NewStagingBuffer = isim.NewStagingBuffer
	// AllPolicies returns every compared policy in Fig. 8 bar order.
	AllPolicies = isim.AllPolicies
	// PolicyByName resolves a Fig. 8 label.
	PolicyByName = isim.PolicyByName
	// Run simulates one policy under a config.
	Run = isim.Run
	// Fig8Scenarios returns the six Fig. 8 panels.
	Fig8Scenarios = isim.Fig8Scenarios
	// ScenarioByID resolves a panel id or dataset name.
	ScenarioByID = isim.ScenarioByID
)

// Sweep-engine grid presets and encoders.
var (
	// ScenarioGrid is one Fig. 8 panel × every policy.
	ScenarioGrid = sweep.ScenarioGrid
	// Fig8Grid is all six panels × every policy.
	Fig8Grid = sweep.Fig8Grid
	// Fig9Grid is the 25-point RAM × SSD environment study.
	Fig9Grid = sweep.Fig9Grid
	// Fig9StagingGrid is the staging-buffer preliminary.
	Fig9StagingGrid = sweep.Fig9StagingGrid
	// Fig9FullGrid is the environment study plus the staging preliminary
	// as one grid (one report, one document).
	Fig9FullGrid = sweep.Fig9FullGrid
	// Fig9Axes / Fig9StagingSizes / Fig9CellID / Fig9StagingID expose the
	// Fig. 9 grid geometry so presenters can key summaries by row.
	Fig9Axes         = sweep.Fig9Axes
	Fig9StagingSizes = sweep.Fig9StagingSizes
	Fig9CellID       = sweep.Fig9CellID
	Fig9StagingID    = sweep.Fig9StagingID
	// AblationGrid isolates each NoPFS design choice.
	AblationGrid = sweep.AblationGrid
	// AllPolicySpecs is the full policy column set.
	AllPolicySpecs = sweep.AllPolicySpecs
	// ReplicaSeed derives deterministic per-replica seeds.
	ReplicaSeed = sweep.ReplicaSeed
	// ChaosProfiles builds a fault-profile axis from chaos profiles.
	ChaosProfiles = sweep.ChaosProfiles
	// AccessPatterns builds an access-pattern axis from parsed patterns;
	// AccessAxis builds the uniform-vs-pattern axis from an -access spec.
	AccessPatterns = sweep.AccessPatterns
	AccessAxis     = sweep.AccessAxis
	// WriteJSON / WriteCSV / WriteText encode a Report.
	WriteJSON = sweep.WriteJSON
	WriteCSV  = sweep.WriteCSV
	WriteText = sweep.WriteText
	// NewJSONAggregator / NewCSVAggregator / NewTextAggregator stream the
	// same bytes as the Report encoders above through Runner.RunStream,
	// holding only the open summary group in memory.
	NewJSONAggregator = sweep.NewJSONAggregator
	NewCSVAggregator  = sweep.NewCSVAggregator
	NewTextAggregator = sweep.NewTextAggregator
	// NewResultMemo builds a size-bounded cell-outcome cache for
	// incremental re-simulation.
	NewResultMemo = sweep.NewResultMemo
)

// RunScenario simulates every policy on one panel through the sweep engine
// (GOMAXPROCS-wide pool) and returns results in Fig. 8 bar order. Canceling
// ctx aborts the grid with ctx's error.
func RunScenario(ctx context.Context, s Scenario, scale float64, seed uint64) ([]*Result, error) {
	return sweep.RunScenario(ctx, s, scale, seed, 0)
}

// Fig9Sweep runs the environment study through the sweep engine.
func Fig9Sweep(ctx context.Context, scale float64, seed uint64) ([]SweepPoint, error) {
	return sweep.Fig9Sweep(ctx, scale, seed, 0)
}

// Fig9SweepParallel is Fig9Sweep with an explicit pool width (0 =
// GOMAXPROCS, 1 = serial).
func Fig9SweepParallel(ctx context.Context, scale float64, seed uint64, parallel int) ([]SweepPoint, error) {
	return sweep.Fig9Sweep(ctx, scale, seed, parallel)
}

// Fig9StagingCheck runs the staging-buffer-size preliminary through the
// sweep engine.
func Fig9StagingCheck(ctx context.Context, scale float64, seed uint64) (map[int]*Result, error) {
	return sweep.Fig9StagingCheck(ctx, scale, seed, 0)
}

// PrintScenario renders one panel's results as the paper's bar chart, in
// text: execution time per policy with the per-location time breakdown and
// coverage flags.
func PrintScenario(w io.Writer, s Scenario, results []*Result) {
	fmt.Fprintf(w, "== %s: %s ==\n", s.ID, s.Label)
	fmt.Fprintf(w, "%-20s %12s %10s %28s %s\n", "policy", "exec", "stall", "fetch time pfs/remote/local", "notes")
	for _, r := range results {
		if r.Failed {
			fmt.Fprintf(w, "%-20s %12s %10s %28s %s\n", r.Policy, "-", "-", "-", r.FailReason)
			continue
		}
		notes := ""
		if r.Coverage < 0.999 {
			notes = fmt.Sprintf("does not access entire dataset (%.0f%%)", 100*r.Coverage)
		}
		fmt.Fprintf(w, "%-20s %11.2fs %9.2fs %8.1f/%8.1f/%8.1fs  %s\n",
			r.Policy, r.ExecSeconds, r.StallSeconds,
			r.LocSeconds[perfmodel.LocPFS], r.LocSeconds[perfmodel.LocRemote],
			r.LocSeconds[perfmodel.LocLocal], notes)
	}
}

// PrintSweep renders the Fig. 9 grid: execution time by (RAM, SSD).
func PrintSweep(w io.Writer, points []SweepPoint) {
	ssds := map[int]bool{}
	rams := map[int]bool{}
	byCfg := map[[2]int]float64{}
	for _, p := range points {
		ssds[p.SSDGB] = true
		rams[p.RAMGB] = true
		byCfg[[2]int{p.RAMGB, p.SSDGB}] = p.Result.ExecSeconds
	}
	var ssdList, ramList []int
	for v := range ssds {
		ssdList = append(ssdList, v)
	}
	for v := range rams {
		ramList = append(ramList, v)
	}
	sort.Ints(ssdList)
	sort.Ints(ramList)
	fmt.Fprintf(w, "exec seconds by RAM (rows) x SSD (cols), GB:\n%8s", "")
	for _, s := range ssdList {
		fmt.Fprintf(w, "%10d", s)
	}
	fmt.Fprintln(w)
	for _, r := range ramList {
		fmt.Fprintf(w, "%8d", r)
		for _, s := range ssdList {
			fmt.Fprintf(w, "%10.1f", byCfg[[2]int{r, s}])
		}
		fmt.Fprintln(w)
	}
}
