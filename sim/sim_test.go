package sim

import (
	"context"
	"strings"
	"testing"
)

func TestFacadeScenarioRoundTrip(t *testing.T) {
	scenarios := Fig8Scenarios()
	if len(scenarios) != 6 {
		t.Fatalf("got %d scenarios, want 6", len(scenarios))
	}
	for _, s := range scenarios {
		got, err := ScenarioByID(s.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Label != s.Label {
			t.Errorf("round trip %s: %q != %q", s.ID, got.Label, s.Label)
		}
	}
}

func TestFacadeRunAndPrint(t *testing.T) {
	s, err := ScenarioByID("fig8a")
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunScenario(context.Background(), s, 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	PrintScenario(&buf, s, results)
	out := buf.String()
	for _, want := range []string{"NoPFS", "LowerBound", "Naive", "fig8a"} {
		if !strings.Contains(out, want) {
			t.Errorf("scenario report missing %q:\n%s", want, out)
		}
	}
}

func TestFacadeSweepAndPrint(t *testing.T) {
	points, err := Fig9Sweep(context.Background(), 0.002, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	PrintSweep(&buf, points)
	out := buf.String()
	if !strings.Contains(out, "512") || !strings.Contains(out, "1024") {
		t.Errorf("sweep grid missing row/column headers:\n%s", out)
	}
	// 5 RAM rows + header.
	if lines := strings.Count(out, "\n"); lines < 6 {
		t.Errorf("sweep grid too short: %d lines", lines)
	}
}

func TestFacadePolicyRegistry(t *testing.T) {
	if len(AllPolicies()) != 10 {
		t.Errorf("expected 10 policies, got %d", len(AllPolicies()))
	}
	for _, ctor := range []func() Policy{NewNoPFS, NewLowerBound, NewNaive, NewStagingBuffer} {
		p := ctor()
		if _, err := PolicyByName(p.Name()); err != nil {
			t.Errorf("constructor policy %q not in registry", p.Name())
		}
	}
}
