package repro_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// Smoke coverage for the cmd/ and examples/ trees: every main package must
// build, and the fast CLIs must run end to end with exit 0 and non-empty
// output. (Before these tests, `go test ./...` reported "[no test files]"
// for all six main packages.)

// smokeBinDir records the shared build directory for TestMain cleanup.
var smokeBinDir string

// smokeBin builds every main package exactly once per test binary and
// returns the directory holding the executables.
var smokeBin = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "repro-smoke-*")
	if err != nil {
		return "", err
	}
	smokeBinDir = dir
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator),
		"./cmd/...", "./examples/...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", &buildError{out: out, err: err}
	}
	return dir, nil
})

// TestMain removes the shared build directory after the package's tests.
func TestMain(m *testing.M) {
	code := m.Run()
	if smokeBinDir != "" {
		os.RemoveAll(smokeBinDir)
	}
	os.Exit(code)
}

type buildError struct {
	out []byte
	err error
}

func (e *buildError) Error() string {
	return e.err.Error() + "\n" + string(e.out)
}

// binary returns the path of one built executable, building all of them on
// first use.
func binary(t *testing.T, name string) string {
	t.Helper()
	dir, err := smokeBin()
	if err != nil {
		t.Fatalf("building main packages: %v", err)
	}
	p := filepath.Join(dir, name)
	if runtime.GOOS == "windows" {
		p += ".exe"
	}
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("main package %s did not produce a binary: %v", name, err)
	}
	return p
}

// runBinary executes a built CLI and returns its stdout, failing on non-zero
// exit.
func runBinary(t *testing.T, name string, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(binary(t, name), args...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %s: %v\nstderr:\n%s", name, strings.Join(args, " "), err, stderr.String())
	}
	return stdout.String()
}

// TestSmokeBuildAllMainPackages asserts every cmd/ and examples/ main
// builds and yields an executable.
func TestSmokeBuildAllMainPackages(t *testing.T) {
	for _, name := range []string{
		"nopfs", "nopfs-access", "nopfs-sim", "nopfs-train",
		"chaos", "cosmoflow", "imagenet", "quickstart", "sysdesign",
	} {
		binary(t, name)
	}
}

// TestSmokeNopfsSubcommandMatchesLegacy diffs the consolidated binary's
// subcommands against the deprecated standalone shims byte for byte — the
// consolidation contract, observed through real process invocations.
func TestSmokeNopfsSubcommandMatchesLegacy(t *testing.T) {
	cases := []struct {
		legacy string
		sub    string
		args   []string
	}{
		{"nopfs-sim", "sim", []string{"-scenario", "fig8a", "-scale", "0.005"}},
		{"nopfs-sim", "sim", []string{"-table1"}},
		{"nopfs-sim", "sim", []string{"-scenario", "fig8b", "-scale", "0.005", "-format", "csv", "-replicas", "2"}},
		{"nopfs-train", "train", []string{"-fig", "10", "-scale", "0.05", "-gpus", "32"}},
		{"nopfs-access", "access", []string{"-f", "2000", "-n", "4", "-e", "6"}},
	}
	for _, tc := range cases {
		t.Run(tc.sub+" "+strings.Join(tc.args, " "), func(t *testing.T) {
			legacy := runBinary(t, tc.legacy, tc.args...)
			sub := runBinary(t, "nopfs", append([]string{tc.sub}, tc.args...)...)
			if legacy != sub {
				t.Errorf("%s and nopfs %s outputs differ:\n-- legacy --\n%s\n-- subcommand --\n%s",
					tc.legacy, tc.sub, legacy, sub)
			}
		})
	}
}

// TestSmokeNopfsDryRun runs both --dry-run paths end to end: fast, exit 0,
// and carrying the plan-analysis sections.
func TestSmokeNopfsDryRun(t *testing.T) {
	sim := runBinary(t, "nopfs", "sim", "-scenario", "fig8a", "-scale", "0.005", "-dry-run")
	for _, want := range []string{"dry run: grid", "placement (NoPFS policy, worker 0):", "predicted fetch mix"} {
		if !strings.Contains(sim, want) {
			t.Errorf("nopfs sim -dry-run output missing %q:\n%s", want, sim)
		}
	}
	train := runBinary(t, "nopfs", "train", "-fig", "10", "-scale", "0.02", "-gpus", "32", "-dry-run")
	for _, want := range []string{"dry run: grid \"fig10-pizdaint\"", "predicted time:"} {
		if !strings.Contains(train, want) {
			t.Errorf("nopfs train -dry-run output missing %q:\n%s", want, train)
		}
	}
}

// TestSmokeNopfsRunMetrics exercises the live-cluster subcommand with the
// Prometheus dump on stdout: the observability acceptance check through a
// real process.
func TestSmokeNopfsRunMetrics(t *testing.T) {
	out := runBinary(t, "nopfs", "run",
		"-workers", "2", "-epochs", "2", "-samples", "128", "-sample-kb", "8",
		"-pfs-mbps", "4", "-ram-mb", "1", "-metrics-out", "-")
	for _, want := range []string{
		"rank  delivered",
		"nopfs_fetches_total{",
		"nopfs_tier_hits_total{",
		"nopfs_stall_seconds_total{",
		`nopfs_limiter_wait_seconds_total{limiter="pfs"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("nopfs run output missing %q:\n%s", want, out)
		}
	}
}

// TestSmokeAccessCLI runs the access-pattern analysis at tiny scale.
func TestSmokeAccessCLI(t *testing.T) {
	out := runBinary(t, "nopfs-access", "-f", "2000", "-n", "4", "-e", "6")
	if len(out) == 0 {
		t.Fatal("nopfs-access produced no output")
	}
	for _, want := range []string{"heavy hitters", "every sample accessed exactly once per epoch"} {
		if !strings.Contains(out, want) {
			t.Errorf("nopfs-access output missing %q:\n%s", want, out)
		}
	}
}

// TestSmokeSimCLI runs one Fig. 8 panel at tiny scale in every format.
func TestSmokeSimCLI(t *testing.T) {
	text := runBinary(t, "nopfs-sim", "-scenario", "fig8a", "-scale", "0.005")
	if !strings.Contains(text, "NoPFS") || !strings.Contains(text, "fig8a") {
		t.Errorf("nopfs-sim text output unexpected:\n%s", text)
	}
	jsonOut := runBinary(t, "nopfs-sim", "-scenario", "fig8a", "-scale", "0.005", "-format", "json")
	if !strings.Contains(jsonOut, `"grid": "fig8a"`) {
		t.Errorf("nopfs-sim json output unexpected:\n%.400s", jsonOut)
	}
	csvOut := runBinary(t, "nopfs-sim", "-scenario", "fig8a", "-scale", "0.005", "-format", "csv")
	if !strings.HasPrefix(csvOut, "grid,scenario,policy") {
		t.Errorf("nopfs-sim csv output unexpected:\n%.200s", csvOut)
	}
}

// TestSmokeSimCLIChaosDeterministic runs one panel under a fault profile at
// pool widths 1 and 8: chaos injection is seed-derived and stateless, so
// faulted reports must stay bit-identical across parallelism, and the
// profile column must appear in the encoding.
func TestSmokeSimCLIChaosDeterministic(t *testing.T) {
	args := []string{"-scenario", "fig8a", "-scale", "0.005", "-chaos", "meltdown", "-replicas", "2", "-format", "json"}
	serial := runBinary(t, "nopfs-sim", append(args, "-parallel", "1")...)
	wide := runBinary(t, "nopfs-sim", append(args, "-parallel", "8")...)
	if serial != wide {
		t.Error("chaos-injected nopfs-sim output differs between -parallel 1 and -parallel 8")
	}
	for _, want := range []string{`"profile": "meltdown"`, `"profile": "clean"`} {
		if !strings.Contains(serial, want) {
			t.Errorf("chaos report missing %s", want)
		}
	}
}

// TestSmokeTrainCLIDeterministicAcrossParallelism runs a trimmed Fig. 10
// through the real CLI at pool widths 1 and 8 and requires byte-identical
// output — the engine's determinism contract, observed end to end.
func TestSmokeTrainCLIDeterministicAcrossParallelism(t *testing.T) {
	args := []string{"-fig", "10", "-scale", "0.05", "-gpus", "32,64"}
	serial := runBinary(t, "nopfs-train", append(args, "-parallel", "1")...)
	wide := runBinary(t, "nopfs-train", append(args, "-parallel", "8")...)
	if len(serial) == 0 {
		t.Fatal("nopfs-train produced no output")
	}
	if serial != wide {
		t.Errorf("nopfs-train output differs between -parallel 1 and -parallel 8:\n-- serial --\n%s\n-- wide --\n%s", serial, wide)
	}
	if !strings.Contains(serial, "Piz Daint") || !strings.Contains(serial, "NoPFS") {
		t.Errorf("nopfs-train output unexpected:\n%s", serial)
	}
}
